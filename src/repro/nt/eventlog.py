"""The NT event log.

MSCS writes its restart actions here, and the DTS data collector reads
it back to decide whether a "server restart" happened during a run —
the same detection path the paper describes ("Some middleware, such as
Microsoft Cluster Server, write output to the Windows NT event log").
"""

from __future__ import annotations

import enum
from typing import Iterable, Optional


class EventType(enum.Enum):
    INFORMATION = "information"
    WARNING = "warning"
    ERROR = "error"


class EventRecord:
    """One event-log entry."""

    __slots__ = ("time", "source", "event_type", "event_id", "message")

    def __init__(self, time: float, source: str, event_type: EventType,
                 event_id: int, message: str):
        self.time = time
        self.source = source
        self.event_type = event_type
        self.event_id = event_id
        self.message = message

    def __repr__(self) -> str:
        return (f"<Event t={self.time:.3f} {self.source} "
                f"{self.event_type.value} #{self.event_id} {self.message!r}>")


class EventLog:
    """Append-only system event log."""

    def __init__(self) -> None:
        self.records: list[EventRecord] = []

    def write(self, time: float, source: str, event_type: EventType,
              event_id: int, message: str) -> EventRecord:
        record = EventRecord(time, source, event_type, event_id, message)
        self.records.append(record)
        return record

    def query(self, source: Optional[str] = None,
              event_type: Optional[EventType] = None,
              since: float = 0.0) -> Iterable[EventRecord]:
        """Records filtered by source/type/time, oldest first."""
        for record in self.records:
            if record.time < since:
                continue
            if source is not None and record.source != source:
                continue
            if event_type is not None and record.event_type != event_type:
                continue
            yield record

    def count(self, source: Optional[str] = None) -> int:
        return sum(1 for _ in self.query(source=source))

    def clear(self) -> None:
        self.records.clear()

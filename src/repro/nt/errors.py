"""Win32 error codes, NT status codes and structured exceptions.

Only the codes the simulated substrate actually produces are defined,
with the real Windows NT 4.0 numeric values so logs and reports read
like the originals.

Two error-reporting conventions coexist, as on real NT:

- **Win32 last-error**: API functions return a failure sentinel (0,
  ``FALSE``, ``INVALID_HANDLE_VALUE``) and record a code retrievable via
  ``GetLastError`` — modelled by :meth:`Win32Context.set_last_error`.
- **Structured exceptions**: hardware-level faults (an access violation
  from dereferencing a corrupted pointer) unwind the whole process —
  modelled by :class:`StructuredException` propagating out of the
  program generator, which the process manager turns into a crashed
  process with the corresponding NTSTATUS exit code.
"""

from __future__ import annotations

# ----------------------------------------------------------------------
# Win32 error codes (winerror.h values)
# ----------------------------------------------------------------------
ERROR_SUCCESS = 0
ERROR_FILE_NOT_FOUND = 2
ERROR_PATH_NOT_FOUND = 3
ERROR_ACCESS_DENIED = 5
ERROR_INVALID_HANDLE = 6
ERROR_NOT_ENOUGH_MEMORY = 8
ERROR_INVALID_DATA = 13
ERROR_OUTOFMEMORY = 14
ERROR_GEN_FAILURE = 31        # EIO: a device attached to the system failed
ERROR_INVALID_PARAMETER = 87
ERROR_DISK_FULL = 112         # ENOSPC: not enough space on the disk
ERROR_INSUFFICIENT_BUFFER = 122
ERROR_INVALID_NAME = 123
ERROR_MOD_NOT_FOUND = 126
ERROR_ALREADY_EXISTS = 183
ERROR_ENVVAR_NOT_FOUND = 203
ERROR_PIPE_BUSY = 231
ERROR_NO_DATA = 232
ERROR_INVALID_ADDRESS = 487
ERROR_INVALID_FLAGS = 1004
ERROR_SERVICE_REQUEST_TIMEOUT = 1053
ERROR_SERVICE_NO_THREAD = 1054
ERROR_SERVICE_DATABASE_LOCKED = 1055
ERROR_SERVICE_ALREADY_RUNNING = 1056
ERROR_INVALID_SERVICE_CONTROL = 1052
ERROR_SERVICE_CANNOT_ACCEPT_CTRL = 1061
ERROR_SERVICE_NOT_ACTIVE = 1062
ERROR_EXCEPTION_IN_SERVICE = 1064
ERROR_SERVICE_SPECIFIC_ERROR = 1066
ERROR_SERVICE_DOES_NOT_EXIST = 1060
ERROR_NO_SYSTEM_RESOURCES = 1450  # a full handle table surfaces as this
ERROR_TIMEOUT = 1460

# Wait function return values (not errors, but the same numeric space).
WAIT_OBJECT_0 = 0x00000000
WAIT_ABANDONED = 0x00000080
WAIT_TIMEOUT = 0x00000102
WAIT_FAILED = 0xFFFFFFFF

INFINITE = 0xFFFFFFFF
INVALID_HANDLE_VALUE = 0xFFFFFFFF

# ----------------------------------------------------------------------
# NTSTATUS codes (process exit codes for crashes)
# ----------------------------------------------------------------------
STATUS_SUCCESS = 0x00000000
STATUS_ACCESS_VIOLATION = 0xC0000005
STATUS_IN_PAGE_ERROR = 0xC0000006
STATUS_INVALID_HANDLE = 0xC0000008
STATUS_NO_MEMORY = 0xC0000017
STATUS_ILLEGAL_INSTRUCTION = 0xC000001D
STATUS_STACK_OVERFLOW = 0xC00000FD
STATUS_CONTROL_C_EXIT = 0xC000013A
STATUS_DLL_INIT_FAILED = 0xC0000142
STATUS_HEAP_CORRUPTION = 0xC0000374

_ERROR_NAMES = {
    value: name
    for name, value in list(globals().items())
    if name.startswith(("ERROR_", "STATUS_", "WAIT_")) and isinstance(value, int)
}


def error_name(code: int) -> str:
    """Symbolic name for a code, or its hex representation if unknown."""
    return _ERROR_NAMES.get(code, f"0x{code:08X}")


class StructuredException(Exception):
    """An NT structured exception.

    Raised by simulated kernel32 implementations; if no simulated
    handler intervenes it unwinds the program generator and the process
    manager records a crash with ``status`` as the exit code.
    """

    status = STATUS_ACCESS_VIOLATION

    def __init__(self, message: str = "", status: int | None = None):
        super().__init__(message)
        if status is not None:
            self.status = status

    def __str__(self) -> str:
        base = super().__str__()
        return f"{error_name(self.status)}: {base}" if base else error_name(self.status)


class AccessViolation(StructuredException):
    """Dereference of an invalid address (NULL or wild pointer)."""

    status = STATUS_ACCESS_VIOLATION

    def __init__(self, address: int, operation: str = "read"):
        super().__init__(f"{operation} of address 0x{address:08X}")
        self.address = address
        self.operation = operation


class HeapCorruption(StructuredException):
    """Detected corruption of a heap structure (e.g. freeing a wild block)."""

    status = STATUS_HEAP_CORRUPTION


class ThreadExit(BaseException):
    """Internal control-flow signal used by ``ExitThread``.

    Ends only the calling thread; on the main thread it ends the
    process (a simplification of NT's last-thread rule that matches the
    workloads, whose main threads never call ``ExitThread`` mid-life).
    """

    def __init__(self, code: int):
        super().__init__(f"ExitThread({code})")
        self.code = code


class ProcessExit(BaseException):
    """Internal control-flow signal used by ``ExitProcess``.

    Derives from ``BaseException`` so simulated application code that
    catches ``Exception`` does not accidentally survive its own
    ``ExitProcess`` call.
    """

    def __init__(self, code: int):
        super().__init__(f"ExitProcess({code})")
        self.code = code

"""NT process lifecycle on top of the simulation kernel.

An :class:`NTProcess` bundles one *main thread* (a generator program)
plus any threads it creates, a parent/child tree, an exit code, and a
waitable :class:`ProcessObject` other processes can obtain handles to.

Crash semantics follow NT:

- an unhandled :class:`~repro.nt.errors.StructuredException` in *any*
  thread terminates the whole process with that NTSTATUS as exit code;
- ``ExitProcess`` ends the process with the given code;
- termination (ours or ``TerminateProcess``) cascades to child
  processes, standing in for the job-object/console-group teardown the
  real workloads exhibit (an Apache master takes its child down).

Any *other* Python exception escaping a program is a bug in the
simulation itself and is re-raised loudly rather than recorded as a
crash, so harness defects cannot masquerade as injection outcomes.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Callable, Optional, Protocol

from ..sim import SimEvent, SimProcess
from .errors import ProcessExit, StructuredException, ThreadExit
from .handles import KernelObject
from .objects import TlsSlots

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .machine import Machine
    from .context import Win32Context


class Program(Protocol):
    """What the process manager runs: anything with a ``main`` generator."""

    image_name: str

    def main(self, ctx: "Win32Context"):  # pragma: no cover - protocol
        ...


class HarnessError(RuntimeError):
    """A simulated program raised a non-simulated exception (our bug)."""


class ProcessObject(KernelObject):
    """The kernel object a process handle refers to; signaled on exit."""

    kind = "process"

    def __init__(self, process: "NTProcess"):
        super().__init__(process.image_name)
        self.process = process

    @property
    def signaled_now(self) -> bool:
        return not self.process.alive

    def wait_event(self) -> SimEvent:
        # A fresh per-waiter event chained to the exit event: waiters
        # that time out poison only their own event, never the shared
        # process-exit latch.
        event = SimEvent(f"{self.name}.wait")
        self.process.exit_event.add_waiter(event.succeed)
        return event


class NTProcess:
    """A simulated NT process."""

    def __init__(self, machine: "Machine", program: Program, role: str,
                 parent: Optional["NTProcess"], command_line: str):
        self.machine = machine
        self.program = program
        self.role = role
        self.parent = parent
        self.command_line = command_line
        self.pid = machine.allocate_pid()
        self.image_name = getattr(program, "image_name", type(program).__name__)
        self.children: list[NTProcess] = []
        self.threads: list[SimProcess] = []
        self.exit_code: Optional[int] = None
        self.crashed = False
        # True when something *else* ended this process (TerminateProcess,
        # middleware stop, harness teardown) rather than its own program
        # returning or calling ExitProcess.  The transport's connection
        # hygiene check uses this to tell leaked connections from
        # connections torn down by the fault model.
        self.terminated_externally = False
        self.exit_event = SimEvent(f"{self.image_name}:{self.pid}.exit")
        self.last_error = 0
        self.tls = TlsSlots()
        self.environment: dict[str, str] = dict(
            parent.environment if parent is not None else machine.base_environment
        )
        self.kernel_object = ProcessObject(self)
        self.suspended = False
        # Lazily-created default heap (see impl_memory.GetProcessHeap).
        self._default_heap = None
        self._default_heap_handle = 0
        self._ending = False
        self._thread_seq = itertools.count(1)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self.exit_code is None

    def __repr__(self) -> str:
        state = "alive" if self.alive else f"exited({self.exit_code})"
        return f"<NTProcess {self.image_name} pid={self.pid} role={self.role} {state}>"

    # ------------------------------------------------------------------
    # Threads
    # ------------------------------------------------------------------
    def start_main_thread(self) -> None:
        from .context import Win32Context  # local import: cycle with context

        # Programs may declare an alternative context class (the Linux
        # port's programs use PosixContext); the default is Win32.
        context_class = getattr(self.program, "context_class", Win32Context)
        ctx = context_class(self.machine, self)
        self._spawn_thread(self.program.main(ctx), "main", is_main=True)

    def spawn_thread(self, generator) -> SimProcess:
        """Start an additional thread (``CreateThread``)."""
        return self._spawn_thread(
            generator, f"t{next(self._thread_seq)}", is_main=False
        )

    def _spawn_thread(self, generator, label: str, is_main: bool) -> SimProcess:
        thread = SimProcess(
            self.machine.engine,
            self._thread_wrapper(generator, is_main),
            name=f"{self.image_name}:{self.pid}:{label}",
        )
        self.threads.append(thread)
        thread.done.add_waiter(lambda _value, t=thread: self._surface_bug(t))
        thread.start()
        return thread

    @staticmethod
    def _surface_bug(thread: SimProcess) -> None:
        """Re-raise harness bugs out of the engine instead of burying
        them as a quiet thread failure."""
        if isinstance(thread.error, HarnessError):
            raise thread.error

    def _thread_wrapper(self, generator, is_main: bool):
        """Translate program-level endings into NT process semantics."""
        try:
            yield from generator
        except ProcessExit as exit_signal:
            self._terminate(exit_signal.code, crashed=False)
            return
        except ThreadExit as exit_signal:
            if is_main:
                self._terminate(exit_signal.code, crashed=False)
            return
        except StructuredException as fault:
            # Unhandled SEH exception in any thread kills the process.
            self._terminate(fault.status, crashed=True)
            return
        except GeneratorExit:
            raise
        except Exception as bug:
            raise HarnessError(
                f"simulated program {self.image_name!r} raised {bug!r}"
            ) from bug
        if is_main:
            # Main thread returning ends the process with code 0;
            # worker threads just end.
            self._terminate(0, crashed=False)

    # ------------------------------------------------------------------
    # Termination
    # ------------------------------------------------------------------
    def terminate(self, exit_code: int = 1) -> None:
        """Kill from outside (``TerminateProcess`` / middleware stop)."""
        if self.alive:
            self.terminated_externally = True
        self._terminate(exit_code, crashed=False)

    def crash(self, status: int) -> None:
        """Kill as if an unhandled structured exception occurred."""
        self._terminate(status, crashed=True)

    def _terminate(self, exit_code: int, crashed: bool) -> None:
        if self._ending or not self.alive:
            return
        self._ending = True
        self.exit_code = exit_code
        self.crashed = crashed
        for thread in self.threads:
            if thread.alive:
                thread.kill(f"process {self.pid} exiting")
        for child in list(self.children):
            if child.alive:
                child.terminate(exit_code=1)
        # Kernel-level death bookkeeping (the SCM's exit waiter marking
        # the service stopped) must precede the network-level resets:
        # observers woken by a connection reset may immediately query
        # the SCM and must not see a stale RUNNING state.
        self.exit_event.succeed(exit_code)
        self.machine.on_process_exit(self)


class ProcessManager:
    """Creates processes and resolves program images."""

    def __init__(self, machine: "Machine"):
        self.machine = machine
        self.processes: list[NTProcess] = []
        self._images: dict[str, tuple[Callable[[str], Program], str]] = {}

    # ------------------------------------------------------------------
    # Image registry (stands in for executables on disk)
    # ------------------------------------------------------------------
    def register_image(self, image_name: str,
                       factory: Callable[[str], Program],
                       role: str) -> None:
        """Associate an image name with ``factory(command_line) -> Program``.

        ``role`` labels every process spawned from this image; the fault
        injector targets processes by role (e.g. ``apache1`` vs
        ``apache2``).
        """
        self._images[image_name.lower()] = (factory, role)

    def has_image(self, image_name: str) -> bool:
        return image_name.lower() in self._images

    def create_from_image(self, image_name: str, command_line: str,
                          parent: Optional[NTProcess] = None,
                          suspended: bool = False) -> Optional[NTProcess]:
        """``CreateProcess`` path: instantiate a registered image."""
        entry = self._images.get(image_name.lower())
        if entry is None:
            return None
        factory, role = entry
        program = factory(command_line)
        return self.spawn(program, role=role, parent=parent,
                          command_line=command_line, suspended=suspended)

    # ------------------------------------------------------------------
    # Spawning
    # ------------------------------------------------------------------
    def spawn(self, program: Program, role: str,
              parent: Optional[NTProcess] = None,
              command_line: str = "",
              suspended: bool = False) -> NTProcess:
        """Create and start a process running ``program``.

        ``suspended`` models ``CREATE_SUSPENDED``: the process exists
        but its main thread never runs until :meth:`resume` is called —
        which, for a corrupted creation-flags word, may be never.
        """
        process = NTProcess(self.machine, program, role, parent, command_line)
        self.processes.append(process)
        if parent is not None:
            parent.children.append(process)
        process.suspended = suspended
        if not suspended:
            process.start_main_thread()
        return process

    @staticmethod
    def resume(process: NTProcess) -> None:
        """Start the main thread of a ``CREATE_SUSPENDED`` process."""
        if process.suspended and not process.threads and process.alive:
            process.suspended = False
            process.start_main_thread()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def find_by_pid(self, pid: int) -> Optional[NTProcess]:
        for process in self.processes:
            if process.pid == pid:
                return process
        return None

    def live_processes(self) -> list[NTProcess]:
        return [p for p in self.processes if p.alive]

    def processes_with_role(self, role: str) -> list[NTProcess]:
        return [p for p in self.processes if p.role == role]

    def terminate_all(self) -> None:
        """End-of-run cleanup: kill everything still alive."""
        for process in self.live_processes():
            process.terminate(exit_code=1)

"""A symbolic 32-bit address space.

The fault injector corrupts *raw* parameter values — the 32-bit words
that would sit in registers or on the stack at a library-call boundary.
To make that meaningful in a Python simulation, every pointer-like
argument is interned here and represented by a genuine 32-bit address.
Corrupting the raw word (zeroing, setting to ones, flipping) then has
exactly the consequences it has on NT:

- ``0`` decodes to a NULL pointer;
- an address that no live allocation occupies decodes to a *wild*
  pointer, and dereferencing it raises an access violation;
- an untouched address decodes back to the original Python object.

Addresses are handed out from a realistic user-mode range and never
reused within one machine, so a flipped or offset address is virtually
guaranteed to be wild (as it would be in practice).
"""

from __future__ import annotations

import enum
from typing import Any, Optional

from .errors import AccessViolation

MASK32 = 0xFFFFFFFF

# Typical NT 4.0 user-mode layout: image near 0x00400000, heap above.
_BASE_ADDRESS = 0x00410000
_ALIGNMENT = 16


class Buffer:
    """A mutable byte buffer living at a simulated address."""

    __slots__ = ("data", "label")

    def __init__(self, data: bytes = b"", label: str = ""):
        self.data = bytearray(data)
        self.label = label

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return f"<Buffer {self.label or ''} {len(self.data)}B>"


class CString:
    """An immutable NUL-terminated string at a simulated address."""

    __slots__ = ("text",)

    def __init__(self, text: str):
        self.text = text

    def __repr__(self) -> str:
        return f"<CString {self.text!r}>"


class OutCell:
    """A single machine word an API writes through (``LPDWORD`` etc.)."""

    __slots__ = ("value", "label")

    def __init__(self, value: int = 0, label: str = ""):
        self.value = value
        self.label = label

    def __repr__(self) -> str:
        return f"<OutCell {self.label or ''} value={self.value!r}>"


class WordArray:
    """A caller-provided array of machine words (``HANDLE*`` etc.)."""

    __slots__ = ("values",)

    def __init__(self, values):
        self.values = list(values)

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        return f"<WordArray {self.values!r}>"


class ArgKind(enum.Enum):
    """Classification of a decoded raw argument."""

    INT = "int"        # plain integer payload
    OBJECT = "object"  # address of a live allocation
    NULL = "null"      # raw zero where a pointer was expected
    WILD = "wild"      # address of nothing


class DecodedArg:
    """A raw 32-bit argument plus what it points at (if anything)."""

    __slots__ = ("raw", "kind", "obj")

    def __init__(self, raw: int, kind: ArgKind, obj: Any = None):
        self.raw = raw & MASK32
        self.kind = kind
        self.obj = obj

    @property
    def is_null(self) -> bool:
        return self.raw == 0

    def __repr__(self) -> str:
        return f"<Arg 0x{self.raw:08X} {self.kind.value} {self.obj!r}>"


class AddressSpace:
    """Interns Python objects as 32-bit addresses; decodes them back."""

    def __init__(self, base: int = _BASE_ADDRESS):
        self._next = base
        self._by_address: dict[int, Any] = {}
        self._by_id: dict[int, int] = {}
        # Flyweight cache for integer-typed decoded arguments: handles,
        # sizes and flags repeat constantly, DecodedArg is never
        # mutated after construction, and the call path decodes every
        # argument of every intercepted call.
        self._int_args: dict[int, DecodedArg] = {}

    def intern(self, obj: Any) -> int:
        """Return the stable address of ``obj``, allocating on first use."""
        address = self._by_id.get(id(obj))
        if address is not None and self._by_address.get(address) is obj:
            return address
        address = self._next
        self._next += _ALIGNMENT * (1 + len(getattr(obj, "data", b"")) // _ALIGNMENT)
        self._by_address[address] = obj
        self._by_id[id(obj)] = address
        return address

    def resolve(self, address: int) -> Optional[Any]:
        """The object at exactly ``address``, or None."""
        return self._by_address.get(address & MASK32)

    def free(self, address: int) -> bool:
        """Remove an allocation; later dereferences become wild."""
        obj = self._by_address.pop(address & MASK32, None)
        if obj is None:
            return False
        self._by_id.pop(id(obj), None)
        return True

    @property
    def live_allocations(self) -> int:
        return len(self._by_address)

    # ------------------------------------------------------------------
    # Encoding / decoding of call arguments
    # ------------------------------------------------------------------
    def encode(self, value: Any) -> int:
        """Lower a semantic argument to its raw 32-bit word."""
        # Exact-type fast paths first: the overwhelming majority of raw
        # words are plain ints (handles, sizes, flags).  ``type(True) is
        # bool``, so the int path never swallows a bool.
        cls = type(value)
        if cls is int:
            return value & MASK32
        if value is None:
            return 0
        if cls is str:
            return self.intern(CString(value))
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value & MASK32
        if isinstance(value, str):
            return self.intern(CString(value))
        if isinstance(value, (bytes, bytearray)):
            return self.intern(Buffer(bytes(value)))
        if isinstance(value, (list, tuple)):
            return self.intern(WordArray(value))
        if value.__class__.__module__.startswith("repro."):
            # Any simulation-level object (buffers, cells, structures,
            # thread entry points) can sit behind a pointer argument.
            return self.intern(value)
        raise TypeError(f"cannot encode argument {value!r} as a raw word")

    def decode(self, raw: int, pointer_like: bool) -> DecodedArg:
        """Lift a raw word back to a decoded argument.

        ``pointer_like`` reflects the parameter's declared type: only
        pointer-typed parameters distinguish NULL/WILD/OBJECT; integer
        parameters always decode as INT regardless of value.
        """
        raw &= MASK32
        if not pointer_like:
            arg = self._int_args.get(raw)
            if arg is None:
                arg = self._int_args[raw] = DecodedArg(raw, ArgKind.INT)
            return arg
        if raw == 0:
            return DecodedArg(raw, ArgKind.NULL)
        obj = self._by_address.get(raw)
        if obj is None:
            return DecodedArg(raw, ArgKind.WILD)
        return DecodedArg(raw, ArgKind.OBJECT, obj)


# ----------------------------------------------------------------------
# Dereference helpers used by kernel32 implementations
# ----------------------------------------------------------------------
def deref(arg: DecodedArg, expected_type: type = object, operation: str = "read") -> Any:
    """Dereference a required pointer argument.

    NULL and wild pointers fault, exactly as an unguarded ``mov`` would.
    A pointer to the wrong kind of object (possible when a corrupted
    value lands on some *other* live allocation) also faults, standing
    in for the undefined behaviour of misinterpreting memory.
    """
    if arg.kind in (ArgKind.NULL, ArgKind.WILD):
        raise AccessViolation(arg.raw, operation)
    if arg.kind is ArgKind.INT:
        raise AccessViolation(arg.raw, operation)
    if not isinstance(arg.obj, expected_type):
        raise AccessViolation(arg.raw, operation)
    return arg.obj


def opt_deref(arg: DecodedArg, expected_type: type = object,
              operation: str = "read") -> Optional[Any]:
    """Dereference an optional pointer argument; NULL is legal and maps
    to None (the API treats the parameter as absent)."""
    if arg.is_null:
        return None
    return deref(arg, expected_type, operation)


def string_at(arg: DecodedArg) -> str:
    """Read a required ``LPCSTR`` argument."""
    obj = deref(arg, (CString, Buffer))
    if isinstance(obj, CString):
        return obj.text
    return bytes(obj.data.split(b"\0", 1)[0]).decode("latin-1")


def opt_string_at(arg: DecodedArg) -> Optional[str]:
    """Read an optional ``LPCSTR`` argument (NULL → None)."""
    if arg.is_null:
        return None
    return string_at(arg)

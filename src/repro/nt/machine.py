"""The simulated NT machine: one bootable box per fault-injection run.

Composes the event engine, address space, handle table, filesystem,
interception layer, process manager, SCM, event log and network fabric.
A fresh ``Machine`` is built for every fault-injection run, exactly as
DTS restarts the workload programs for every injected fault.

The paper's testbed was a 100 MHz Pentium (with a 400 MHz Pentium II as
a secondary machine); ``cpu_mhz`` scales all modelled CPU-bound service
times accordingly.
"""

from __future__ import annotations

from typing import Callable

from ..net.transport import Transport
from ..sim import RandomStreams, create_engine
from .eventlog import EventLog
from .filesystem import FileSystem
from .handles import HandleTable
from .interception import InterceptionLayer
from .memory import AddressSpace
from .pressure import PressureState
from .process_manager import NTProcess, ProcessManager
from .scm import ServiceControlManager

DEFAULT_CPU_MHZ = 100
_FIRST_PID = 96
_PID_STRIDE = 4


class Machine:
    """One simulated Windows NT 4.0 Enterprise Server box."""

    def __init__(self, seed: int = 0, cpu_mhz: int = DEFAULT_CPU_MHZ,
                 keep_full_trace: bool = True, scm_lock_enabled: bool = True,
                 tracer=None):
        self.seed = seed
        self.cpu_mhz = cpu_mhz
        # The structured run tracer (repro.trace.Tracer), or None when
        # tracing is off — every subsystem gates on that None test.
        self.tracer = tracer
        # Pure or compiled event loop, selected by $REPRO_ENGINE (the
        # differential oracle flips this; ``auto`` only ever picks the
        # compiled flavour).
        self.engine = create_engine(tracer=tracer)
        self.rng = RandomStreams(seed)
        self.address_space = AddressSpace()
        self.handles = HandleTable()
        self.fs = FileSystem()
        self.interception = InterceptionLayer(keep_full_trace=keep_full_trace)
        self.processes = ProcessManager(self)
        self.scm = ServiceControlManager(self, lock_enabled=scm_lock_enabled)
        self.eventlog = EventLog()
        self.transport = Transport(self)
        # Sustained resource/I-O fault state (repro.nt.pressure); the
        # allocator, CPU model and transport consult it inline.
        self.pressure = PressureState()
        self.base_environment: dict[str, str] = {
            "SystemRoot": "C:\\WINNT",
            "COMPUTERNAME": "DTSTARGET",
            "OS": "Windows_NT",
            "PROCESSOR_ARCHITECTURE": "x86",
        }
        self.named_objects: dict[str, object] = {}
        self.loaded_modules: dict[str, object] = {}
        self.debug_log: list[tuple[float, int, str]] = []
        self._pid_next = _FIRST_PID
        self._exit_listeners: list[Callable[[NTProcess], None]] = []

    # ------------------------------------------------------------------
    # Derived properties
    # ------------------------------------------------------------------
    @property
    def cpu_scale(self) -> float:
        """Multiplier applied to CPU-bound service times.

        Calibrated so the paper's primary 100 MHz machine is 1.0; the
        400 MHz Pentium II runs the same work four times faster.
        """
        return DEFAULT_CPU_MHZ / self.cpu_mhz

    @property
    def now(self) -> float:
        return self.engine.now

    # ------------------------------------------------------------------
    # Process integration
    # ------------------------------------------------------------------
    def allocate_pid(self) -> int:
        pid = self._pid_next
        self._pid_next += _PID_STRIDE
        return pid

    def add_exit_listener(self, listener: Callable[[NTProcess], None]) -> None:
        """Register a callback invoked whenever any process exits."""
        self._exit_listeners.append(listener)

    def on_process_exit(self, process: NTProcess) -> None:
        """Fan out a process death to the subsystems that observe it."""
        self.transport.on_process_exit(process)
        for listener in list(self._exit_listeners):
            listener(process)

    # ------------------------------------------------------------------
    # Run control
    # ------------------------------------------------------------------
    def run(self, until: float) -> float:
        """Advance the machine's clock (convenience for tests/harness)."""
        return self.engine.run(until=until)

    def shutdown(self) -> None:
        """Kill all processes (end-of-run teardown)."""
        self.processes.terminate_all()

    def check_connection_hygiene(self) -> None:
        """Raise if any client finished a run while leaking connections.

        Leaks are recorded by the transport the moment a process exits
        voluntarily with an unclosed client-side connection; this check
        surfaces them after the run so a sloppy retry path (the original
        HttpClient bug) fails loudly instead of silently accumulating
        half-open connections across a loaded campaign.
        """
        from ..net.transport import ConnectionLeakError

        if self.transport.client_leaks:
            raise ConnectionLeakError(list(self.transport.client_leaks))

    def __repr__(self) -> str:
        return (f"<Machine seed={self.seed} {self.cpu_mhz}MHz "
                f"t={self.engine.now:.3f}>")

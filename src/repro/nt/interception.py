"""Library-call interception — the SWIFI mechanism.

On the paper's real system DTS rewrites a process's import address
table so that every ``KERNEL32.dll`` call passes through a thunk that
may corrupt parameter values.  Here every simulated kernel32 call is
dispatched through this layer, which gives registered hooks the same
power: observe the call, and rewrite its raw argument words before the
implementation sees them.

The layer also keeps the *call trace* the rest of DTS relies on:

- which functions each process role has called (Table 1 counts and the
  fault-activation skip heuristic), and
- per-(process, function) invocation indices (the paper injects only
  the first invocation of each function).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Protocol

from .kernel32.signatures import FunctionSig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .process_manager import NTProcess


class CallOverride:
    """A hook's decision to preempt a call instead of rewriting it.

    With ``skip`` (the default) the implementation never runs: the
    process's last-error slot is set to ``last_error`` and ``result``
    is returned to the caller — how an I/O fault makes ``WriteFile``
    fail with ``ERROR_DISK_FULL`` without corrupting any argument.
    With ``skip=False`` only ``delay`` applies: the call blocks for
    that many sim-seconds and then proceeds normally (per-call
    latency).  ``delay`` is honoured in both cases, before the skip.
    """

    __slots__ = ("result", "last_error", "delay", "skip")

    def __init__(self, result: int = 0, last_error: int = 0,
                 delay: float = 0.0, skip: bool = True):
        self.result = result
        self.last_error = last_error
        self.delay = delay
        self.skip = skip

    def __repr__(self) -> str:
        if self.skip:
            return (f"<CallOverride result={self.result} "
                    f"last_error={self.last_error}>")
        return f"<CallOverride delay={self.delay}>"


class CallHook(Protocol):
    """Interface for interception hooks (the fault injector)."""

    def on_call(self, process: "NTProcess", sig: FunctionSig,
                invocation: int, raw_args: tuple[int, ...]) -> Optional[tuple[int, ...]]:
        """Observe/rewrite one call.

        ``invocation`` is 1-based and counted per (process, function).
        Return replacement raw args, a :class:`CallOverride` to
        preempt or delay the call, or None to leave it unchanged.
        """


class ReturnHook(Protocol):
    """Interface for hooks that rewrite a call's *return value* — the
    alternative fault-injection mechanism the DTS architecture was
    designed to accommodate ("the basic DTS architecture is not
    dependent on a particular fault injection mechanism")."""

    def on_return(self, process: "NTProcess", sig: FunctionSig,
                  invocation: int, result: int) -> Optional[int]:
        """Observe/rewrite the integer result of one completed call.

        Return the replacement value, or None to leave it unchanged.
        """


class CallRecord:
    """One intercepted call, as kept in the machine-wide trace."""

    __slots__ = ("time", "pid", "role", "func", "invocation", "injected")

    def __init__(self, time: float, pid: int, role: str, func: str,
                 invocation: int, injected: bool):
        self.time = time
        self.pid = pid
        self.role = role
        self.func = func
        self.invocation = invocation
        self.injected = injected

    def __repr__(self) -> str:
        mark = " INJ" if self.injected else ""
        return f"<Call t={self.time:.3f} {self.role}/{self.pid} {self.func}#{self.invocation}{mark}>"


class InterceptionLayer:
    """Dispatch point between program code and kernel32 implementations."""

    def __init__(self, keep_full_trace: bool = True):
        self.hooks: list[CallHook] = []
        self.return_hooks: list[ReturnHook] = []
        self.keep_full_trace = keep_full_trace
        self.trace: list[CallRecord] = []
        # Per-pid invocation counters, nested rather than keyed by
        # (pid, name) tuples: dispatch runs for every simulated library
        # call, and the nested form needs no key allocation there.
        self._invocations: dict[int, dict[str, int]] = {}
        self._called_by_role: dict[str, set[str]] = {}
        self._call_counts: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Hook management
    # ------------------------------------------------------------------
    def add_hook(self, hook: CallHook) -> None:
        self.hooks.append(hook)

    def remove_hook(self, hook: CallHook) -> None:
        try:
            self.hooks.remove(hook)
        except ValueError:
            pass

    def add_return_hook(self, hook: ReturnHook) -> None:
        self.return_hooks.append(hook)

    def remove_return_hook(self, hook: ReturnHook) -> None:
        try:
            self.return_hooks.remove(hook)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def dispatch(self, process: "NTProcess", sig: FunctionSig,
                 raw_args: tuple[int, ...]):
        """Run hooks over one call.

        Returns ``(raw_args, override)`` — the possibly corrupted
        argument words plus the last :class:`CallOverride` any hook
        issued (None when the call proceeds normally).
        """
        name = sig.name
        per_pid = self._invocations.get(process.pid)
        if per_pid is None:
            per_pid = self._invocations[process.pid] = {}
        invocation = per_pid.get(name, 0) + 1
        per_pid[name] = invocation

        injected = False
        override = None
        for hook in self.hooks:
            replacement = hook.on_call(process, sig, invocation, raw_args)
            if replacement is not None:
                if replacement.__class__ is CallOverride:
                    override = replacement
                else:
                    raw_args = replacement
                injected = True

        called = self._called_by_role.get(process.role)
        if called is None:
            called = self._called_by_role[process.role] = set()
        called.add(name)
        counts = self._call_counts
        counts[name] = counts.get(name, 0) + 1
        tracer = process.machine.tracer
        if tracer is not None and tracer.calls_enabled:
            tracer.emit(process.machine.engine.now, "call", "enter",
                        pid=process.pid, role=process.role, func=sig.name,
                        invocation=invocation, injected=injected)
        if self.keep_full_trace:
            self.trace.append(CallRecord(
                process.machine.engine.now, process.pid, process.role,
                sig.name, invocation, injected,
            ))
        return raw_args, override

    def dispatch_return(self, process: "NTProcess", sig: FunctionSig,
                        result):
        """Run return hooks over one completed call's result."""
        if self.return_hooks and isinstance(result, int):
            invocation = self._invocations.get(process.pid, {}).get(sig.name, 0)
            for hook in self.return_hooks:
                replacement = hook.on_return(process, sig, invocation, result)
                if replacement is not None:
                    result = replacement
        tracer = process.machine.tracer
        if tracer is not None and tracer.calls_enabled:
            data = {"pid": process.pid, "func": sig.name}
            if result is None or isinstance(result, (int, float, str)):
                data["result"] = result
            tracer.emit(process.machine.engine.now, "call", "exit", **data)
        return result

    # ------------------------------------------------------------------
    # Trace queries
    # ------------------------------------------------------------------
    def called_functions(self, role: Optional[str] = None) -> set[str]:
        """Distinct function names called, optionally for one role."""
        if role is not None:
            return set(self._called_by_role.get(role, set()))
        merged: set[str] = set()
        for names in self._called_by_role.values():
            merged |= names
        return merged

    def roles_seen(self) -> set[str]:
        return set(self._called_by_role)

    def call_count(self, func: str) -> int:
        """Total calls of ``func`` across all processes."""
        return self._call_counts.get(func, 0)

    @property
    def total_calls(self) -> int:
        """All intercepted calls so far, machine-wide (the trace layer's
        call-index clock)."""
        return sum(self._call_counts.values())

    def invocation_count(self, pid: int, func: str) -> int:
        return self._invocations.get(pid, {}).get(func, 0)

"""Environment, computer-identity and version API implementations."""

from __future__ import annotations

from ..errors import ERROR_ENVVAR_NOT_FOUND
from ..memory import CString, OutCell
from .impl_files import _write_string
from .runtime import Frame, k32impl


@k32impl("GetEnvironmentVariableA")
def get_environment_variable_a(frame: Frame) -> int:
    if frame.args[0].is_null:
        # NT validates the name pointer: NULL is a plain error, not a
        # crash (wild pointers still fault below).
        return frame.fail(ERROR_ENVVAR_NOT_FOUND, 0)
    name = frame.string(0)
    value = frame.process.environment.get(name)
    if value is None:
        return frame.fail(ERROR_ENVVAR_NOT_FOUND, 0)
    buffer = frame.opt_buffer(1)
    capacity = frame.uint(2)
    if buffer is None or capacity <= len(value):
        return frame.succeed(len(value) + 1)
    return frame.succeed(_write_string(buffer, value, capacity))


@k32impl("SetEnvironmentVariableA")
def set_environment_variable_a(frame: Frame) -> int:
    name = frame.string(0)
    value = frame.opt_string(1)
    if value is None:
        frame.process.environment.pop(name, None)
    else:
        frame.process.environment[name] = value
    return frame.succeed(1)


@k32impl("ExpandEnvironmentStringsA")
def expand_environment_strings_a(frame: Frame) -> int:
    source = frame.string(0)
    expanded = source
    for key, value in frame.process.environment.items():
        expanded = expanded.replace(f"%{key}%", value)
    buffer = frame.opt_buffer(1)
    capacity = frame.uint(2)
    if buffer is None or capacity <= len(expanded):
        return frame.succeed(len(expanded) + 1)
    _write_string(buffer, expanded, capacity)
    return frame.succeed(len(expanded) + 1)


@k32impl("GetEnvironmentStrings")
def get_environment_strings(frame: Frame) -> int:
    block = "\0".join(f"{k}={v}" for k, v in
                      sorted(frame.process.environment.items()))
    return frame.machine.address_space.intern(CString(block))


@k32impl("GetEnvironmentStringsA")
def get_environment_strings_a(frame: Frame) -> int:
    return get_environment_strings(frame)


@k32impl("FreeEnvironmentStringsA")
def free_environment_strings_a(frame: Frame) -> int:
    frame.pointer(0)
    return frame.succeed(1)


@k32impl("GetComputerNameA")
def get_computer_name_a(frame: Frame) -> int:
    buffer = frame.buffer(0)
    size_cell = frame.pointer(1, OutCell)
    name = frame.process.environment.get("COMPUTERNAME", "DTSTARGET")
    _write_string(buffer, name, len(buffer.data) or len(name) + 1)
    size_cell.value = len(name)
    return frame.succeed(1)


@k32impl("GetSystemDirectoryA")
def get_system_directory_a(frame: Frame) -> int:
    buffer = frame.buffer(0)
    capacity = frame.uint(1)
    path = "C:\\WINNT\\system32"
    if capacity <= len(path):
        return frame.succeed(len(path) + 1)
    return frame.succeed(_write_string(buffer, path, capacity))


@k32impl("GetWindowsDirectoryA")
def get_windows_directory_a(frame: Frame) -> int:
    buffer = frame.buffer(0)
    capacity = frame.uint(1)
    path = "C:\\WINNT"
    if capacity <= len(path):
        return frame.succeed(len(path) + 1)
    return frame.succeed(_write_string(buffer, path, capacity))


@k32impl("GetSystemInfo")
def get_system_info(frame: Frame) -> int:
    cell = frame.pointer(0)
    if isinstance(cell, OutCell):
        cell.value = {
            "dwNumberOfProcessors": 1,
            "dwPageSize": 4096,
            "wProcessorArchitecture": 0,  # PROCESSOR_ARCHITECTURE_INTEL
            "dwProcessorType": 586,
        }
    return 0


@k32impl("GetVersion")
def get_version(frame: Frame) -> int:
    # NT 4.0 build 1381: major 4, minor 0, high bit clear (NT platform).
    return (1381 << 16) | (0 << 8) | 4


@k32impl("GetVersionExA")
def get_version_ex_a(frame: Frame) -> int:
    cell = frame.pointer(0)
    if isinstance(cell, OutCell):
        cell.value = {
            "dwMajorVersion": 4,
            "dwMinorVersion": 0,
            "dwBuildNumber": 1381,
            "szCSDVersion": "Service Pack 4",
        }
    return frame.succeed(1)

"""Heap and virtual-memory API implementations.

Corruption consequences modelled here:

- an all-ones byte count makes every allocator fail (4 GB request),
  exercising the application's out-of-memory handling — or lack of it;
- freeing a corrupted (wild) pointer raises heap corruption, which is
  an immediate crash, unlike the quiet failure of a NULL free;
- the ``IsBad*Ptr`` probes never crash — they are how defensively
  written code (and ``watchd``) validates pointers.
"""

from __future__ import annotations

from ..errors import (
    ERROR_INVALID_ADDRESS,
    ERROR_INVALID_HANDLE,
    ERROR_INVALID_PARAMETER,
    ERROR_NOT_ENOUGH_MEMORY,
    HeapCorruption,
)
from ..memory import ArgKind, Buffer, OutCell
from ..objects import HeapObject
from .runtime import Frame, k32impl

_MAX_SANE_ALLOCATION = 1 << 26  # 64 MB: beyond the testbed's 48 MB of RAM


def _default_heap(frame: Frame) -> HeapObject:
    process = frame.process
    heap = getattr(process, "_default_heap", None)
    if heap is None:
        heap = HeapObject(f"heap:{process.pid}")
        process._default_heap = heap
        process._default_heap_handle = frame.new_handle(heap)
    return heap


@k32impl("GetProcessHeap")
def get_process_heap(frame: Frame) -> int:
    _default_heap(frame)
    return frame.process._default_heap_handle


@k32impl("HeapCreate")
def heap_create(frame: Frame) -> int:
    frame.uint(0)
    initial = frame.uint(1)
    maximum = frame.uint(2)
    if initial > _MAX_SANE_ALLOCATION or (maximum and maximum > _MAX_SANE_ALLOCATION):
        return frame.fail(ERROR_NOT_ENOUGH_MEMORY, 0)
    return frame.succeed(frame.new_handle(HeapObject()))


@k32impl("HeapDestroy")
def heap_destroy(frame: Frame) -> int:
    heap = frame.handle_object(0, HeapObject)
    if heap is None:
        return frame.fail(ERROR_INVALID_HANDLE)
    heap.destroyed = True
    for address in heap.allocations:
        frame.machine.address_space.free(address)
    heap.allocations.clear()
    frame.machine.handles.close(frame.args[0].raw)
    return frame.succeed(1)


def _alloc(frame: Frame, heap: HeapObject, size: int) -> int:
    if size > _MAX_SANE_ALLOCATION:
        return frame.fail(ERROR_NOT_ENOUGH_MEMORY, 0)
    if frame.machine.pressure.deny_alloc(frame.process.role):
        # A sustained memory-pressure fault window is open: the
        # allocation fails exactly as an exhausted heap would.
        return frame.fail(ERROR_NOT_ENOUGH_MEMORY, 0)
    block = Buffer(b"\0" * size, label="heap-block")
    address = frame.machine.address_space.intern(block)
    heap.allocations.add(address)
    return frame.succeed(address)


@k32impl("HeapAlloc")
def heap_alloc(frame: Frame) -> int:
    heap = frame.handle_object(0, HeapObject)
    if heap is None or heap.destroyed:
        return frame.fail(ERROR_INVALID_HANDLE, 0)
    frame.uint(1)
    return _alloc(frame, heap, frame.uint(2))


@k32impl("HeapFree")
def heap_free(frame: Frame) -> int:
    heap = frame.handle_object(0, HeapObject)
    if heap is None:
        return frame.fail(ERROR_INVALID_HANDLE)
    frame.uint(1)
    mem = frame.args[2]
    if mem.kind is ArgKind.OBJECT and mem.raw in heap.allocations:
        heap.allocations.discard(mem.raw)
        frame.machine.address_space.free(mem.raw)
        return frame.succeed(1)
    if mem.is_null:
        return frame.fail(ERROR_INVALID_PARAMETER)
    # Freeing a block the heap never issued corrupts its structures.
    raise HeapCorruption(f"HeapFree of 0x{mem.raw:08X}")


@k32impl("HeapReAlloc")
def heap_realloc(frame: Frame) -> int:
    heap = frame.handle_object(0, HeapObject)
    if heap is None:
        return frame.fail(ERROR_INVALID_HANDLE, 0)
    frame.uint(1)
    mem = frame.args[2]
    if mem.kind is not ArgKind.OBJECT or mem.raw not in heap.allocations:
        raise HeapCorruption(f"HeapReAlloc of 0x{mem.raw:08X}")
    return _alloc(frame, heap, frame.uint(3))


@k32impl("HeapSize")
def heap_size(frame: Frame) -> int:
    heap = frame.handle_object(0, HeapObject)
    if heap is None:
        return frame.fail(ERROR_INVALID_HANDLE, 0xFFFFFFFF)
    frame.uint(1)
    block = frame.pointer(2, Buffer)
    return frame.succeed(len(block.data))


@k32impl("HeapValidate")
def heap_validate(frame: Frame) -> int:
    heap = frame.handle_object(0, HeapObject)
    frame.uint(1)
    mem = frame.args[2]
    if heap is None:
        return 0
    if mem.is_null:
        return 1
    return 1 if mem.raw in heap.allocations else 0


def _global_local_alloc(frame: Frame) -> int:
    frame.uint(0)
    return _alloc(frame, _default_heap(frame), frame.uint(1))


def _global_local_free(frame: Frame) -> int:
    heap = _default_heap(frame)
    mem = frame.args[0]
    if mem.is_null:
        return frame.succeed(0)  # freeing NULL is tolerated here
    if mem.kind is ArgKind.OBJECT and mem.raw in heap.allocations:
        heap.allocations.discard(mem.raw)
        frame.machine.address_space.free(mem.raw)
        return frame.succeed(0)
    raise HeapCorruption(f"free of 0x{mem.raw:08X}")


@k32impl("GlobalAlloc")
def global_alloc(frame: Frame) -> int:
    return _global_local_alloc(frame)


@k32impl("LocalAlloc")
def local_alloc(frame: Frame) -> int:
    return _global_local_alloc(frame)


@k32impl("GlobalFree")
def global_free(frame: Frame) -> int:
    return _global_local_free(frame)


@k32impl("LocalFree")
def local_free(frame: Frame) -> int:
    return _global_local_free(frame)


@k32impl("GlobalLock")
def global_lock(frame: Frame) -> int:
    mem = frame.args[0]
    if mem.kind is not ArgKind.OBJECT:
        return frame.fail(ERROR_INVALID_HANDLE, 0)
    return frame.succeed(mem.raw)


@k32impl("GlobalUnlock")
def global_unlock(frame: Frame) -> int:
    mem = frame.args[0]
    if mem.kind is not ArgKind.OBJECT:
        return frame.fail(ERROR_INVALID_HANDLE, 0)
    return frame.succeed(1)


@k32impl("GlobalSize")
def global_size(frame: Frame) -> int:
    mem = frame.args[0]
    if mem.kind is not ArgKind.OBJECT or not isinstance(mem.obj, Buffer):
        return frame.fail(ERROR_INVALID_HANDLE, 0)
    return frame.succeed(len(mem.obj.data))


@k32impl("GlobalMemoryStatus")
def global_memory_status(frame: Frame) -> int:
    cell = frame.pointer(0)
    if isinstance(cell, OutCell):
        cell.value = {
            "dwMemoryLoad": 55,
            "dwTotalPhys": 48 << 20,   # the paper's 48 MB testbed
            "dwAvailPhys": 20 << 20,
            "dwTotalPageFile": 96 << 20,
            "dwAvailPageFile": 60 << 20,
        }
    return 0


@k32impl("VirtualAlloc")
def virtual_alloc(frame: Frame) -> int:
    frame.opt_pointer(0)
    size = frame.uint(1)
    frame.uint(2)
    frame.uint(3)
    if size == 0 or size > _MAX_SANE_ALLOCATION:
        return frame.fail(ERROR_NOT_ENOUGH_MEMORY, 0)
    if frame.machine.pressure.deny_alloc(frame.process.role):
        return frame.fail(ERROR_NOT_ENOUGH_MEMORY, 0)
    block = Buffer(b"\0" * size, label="virtual")
    return frame.succeed(frame.machine.address_space.intern(block))


@k32impl("VirtualFree")
def virtual_free(frame: Frame) -> int:
    mem = frame.args[0]
    frame.uint(1)
    frame.uint(2)
    if mem.kind is not ArgKind.OBJECT:
        return frame.fail(ERROR_INVALID_ADDRESS)
    frame.machine.address_space.free(mem.raw)
    return frame.succeed(1)


@k32impl("VirtualProtect")
def virtual_protect(frame: Frame) -> int:
    frame.pointer(0)
    frame.uint(1)
    frame.uint(2)
    frame.out_cell(3).value = 0x04
    return frame.succeed(1)


@k32impl("VirtualQuery")
def virtual_query(frame: Frame) -> int:
    frame.opt_pointer(0)
    cell = frame.pointer(1)
    if isinstance(cell, OutCell):
        cell.value = {"State": 0x1000, "Protect": 0x04}
    frame.uint(2)
    return frame.succeed(28)


@k32impl("VirtualLock")
def virtual_lock(frame: Frame) -> int:
    frame.pointer(0)
    frame.uint(1)
    return frame.succeed(1)


def _is_bad_pointer(frame: Frame) -> int:
    """Shared body of the IsBad*Ptr probes: 1 = bad, 0 = ok, no crash."""
    arg = frame.args[0]
    if arg.is_null:
        return 1
    return 0 if arg.kind is ArgKind.OBJECT else 1


@k32impl("IsBadReadPtr")
def is_bad_read_ptr(frame: Frame) -> int:
    frame.uint(1)  # ucb: accepted as-is, probes test the base word only
    return _is_bad_pointer(frame)


@k32impl("IsBadWritePtr")
def is_bad_write_ptr(frame: Frame) -> int:
    frame.uint(1)  # ucb: accepted as-is, probes test the base word only
    return _is_bad_pointer(frame)


@k32impl("IsBadCodePtr")
def is_bad_code_ptr(frame: Frame) -> int:
    return _is_bad_pointer(frame)


@k32impl("IsBadStringPtrA")
def is_bad_string_ptr_a(frame: Frame) -> int:
    frame.uint(1)  # ucchMax: accepted as-is, probes test the base word
    return _is_bad_pointer(frame)

"""Profile-string (INI file) API implementations.

Server configuration is read through these, so a corrupted buffer size
or file-name pointer during startup yields a *misconfigured* server —
the path to the "incorrect response received" failure flavour.
"""

from __future__ import annotations

from typing import Optional

from .impl_files import _write_string
from .runtime import Frame, k32impl

_WIN_INI = "C:\\WINNT\\win.ini"


def _ini_lookup(frame: Frame, path: str, section: Optional[str],
                key: Optional[str]) -> Optional[str]:
    """Minimal INI parsing over the in-memory filesystem."""
    data = frame.machine.fs.read_file(path)
    if data is None or section is None or key is None:
        return None
    current = None
    for raw_line in data.decode("latin-1", "replace").splitlines():
        line = raw_line.strip()
        if not line or line.startswith(";"):
            continue
        if line.startswith("[") and line.endswith("]"):
            current = line[1:-1].strip().lower()
            continue
        if current == section.lower() and "=" in line:
            name, _, value = line.partition("=")
            if name.strip().lower() == key.lower():
                return value.strip()
    return None


@k32impl("GetPrivateProfileStringA")
def get_private_profile_string_a(frame: Frame) -> int:
    section = frame.opt_string(0)
    key = frame.opt_string(1)
    default = frame.opt_string(2) or ""
    buffer = frame.buffer(3)
    capacity = frame.uint(4)
    path = frame.string(5)
    value = _ini_lookup(frame, path, section, key)
    if value is None:
        value = default
    if capacity == 0:
        return frame.succeed(0)  # zeroed size: the value is silently lost
    return frame.succeed(_write_string(buffer, value, capacity))


@k32impl("GetPrivateProfileIntA")
def get_private_profile_int_a(frame: Frame) -> int:
    section = frame.string(0)
    key = frame.string(1)
    default = frame.uint(2)
    path = frame.string(3)
    value = _ini_lookup(frame, path, section, key)
    if value is None:
        return default
    try:
        return int(value)
    except ValueError:
        return default


@k32impl("WritePrivateProfileStringA")
def write_private_profile_string_a(frame: Frame) -> int:
    section = frame.opt_string(0)
    key = frame.opt_string(1)
    value = frame.opt_string(2)
    path = frame.string(3)
    if section is None:
        return frame.succeed(1)
    data = frame.machine.fs.read_file(path) or b""
    text = data.decode("latin-1", "replace")
    addition = f"\n[{section}]\n{key}={value}\n" if key else ""
    frame.machine.fs.write_file(path, text + addition)
    return frame.succeed(1)


@k32impl("GetProfileStringA")
def get_profile_string_a(frame: Frame) -> int:
    section = frame.opt_string(0)
    key = frame.opt_string(1)
    default = frame.opt_string(2) or ""
    buffer = frame.buffer(3)
    capacity = frame.uint(4)
    value = _ini_lookup(frame, _WIN_INI, section, key)
    if value is None:
        value = default
    if capacity == 0:
        return frame.succeed(0)
    return frame.succeed(_write_string(buffer, value, capacity))


@k32impl("GetProfileIntA")
def get_profile_int_a(frame: Frame) -> int:
    section = frame.string(0)
    key = frame.string(1)
    default = frame.uint(2)
    value = _ini_lookup(frame, _WIN_INI, section, key)
    if value is None:
        return default
    try:
        return int(value)
    except ValueError:
        return default

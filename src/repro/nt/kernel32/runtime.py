"""Execution support for kernel32 implementations.

Every intercepted call is executed through a :class:`Frame`, which
holds the decoded arguments and exposes the Win32-flavoured helpers
implementations use to validate them.  Validation is where corrupted
raw words turn into consequences:

- a required pointer that decodes to NULL or to a wild address raises
  :class:`~repro.nt.errors.AccessViolation` (the process crashes unless
  the program installed a simulated SEH guard);
- a handle that no longer resolves makes the call fail with
  ``ERROR_INVALID_HANDLE``;
- integers are taken at face value — a zeroed byte count silently reads
  zero bytes, an all-ones timeout becomes INFINITE — producing the
  silent-wrong-behaviour class of outcomes.

Functions without a specific implementation fall back to
:func:`generic_implementation`, which performs exactly this
type-driven validation and then succeeds.  That gives all 551
injectable exports honest default corruption semantics; the ~100
functions the workloads actually exercise have richer implementations
in the ``impl_*`` modules.
"""

from __future__ import annotations

import inspect
from typing import TYPE_CHECKING, Any, Callable, Optional

from ..errors import (
    ERROR_INVALID_HANDLE,
    ERROR_SUCCESS,
    INVALID_HANDLE_VALUE,
)
from ..memory import (
    ArgKind,
    Buffer,
    CString,
    DecodedArg,
    OutCell,
    deref,
    opt_deref,
    opt_string_at,
    string_at,
)
from .signatures import FunctionSig, ParamType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..machine import Machine
    from ..process_manager import NTProcess


class Frame:
    """One in-flight kernel32 call."""

    __slots__ = ("machine", "process", "sig", "args")

    def __init__(self, machine: "Machine", process: "NTProcess",
                 sig: FunctionSig, args: list[DecodedArg]):
        self.machine = machine
        self.process = process
        self.sig = sig
        self.args = args

    # ------------------------------------------------------------------
    # Error reporting
    # ------------------------------------------------------------------
    def fail(self, code: int, ret: int = 0) -> int:
        """Record a last-error code and return the failure sentinel."""
        self.process.last_error = code
        return ret

    def succeed(self, ret: int = 1) -> int:
        self.process.last_error = ERROR_SUCCESS
        return ret

    # ------------------------------------------------------------------
    # Argument access
    # ------------------------------------------------------------------
    def arg(self, index: int) -> DecodedArg:
        return self.args[index]

    def uint(self, index: int) -> int:
        """Raw 32-bit value of an integer-typed parameter."""
        return self.args[index].raw

    def boolean(self, index: int) -> bool:
        """Win32 BOOL: any non-zero raw value is TRUE."""
        return self.args[index].raw != 0

    def timeout_seconds(self, index: int) -> Optional[float]:
        """A ``T`` parameter in seconds; None means INFINITE."""
        raw = self.args[index].raw
        if raw == 0xFFFFFFFF:
            return None
        return raw / 1000.0

    def pointer(self, index: int, expected: type = object) -> Any:
        """Dereference a required pointer parameter (may fault)."""
        return deref(self.args[index], expected)

    def opt_pointer(self, index: int, expected: type = object) -> Optional[Any]:
        """Dereference an optional pointer parameter (NULL → None)."""
        return opt_deref(self.args[index], expected)

    def string(self, index: int) -> str:
        return string_at(self.args[index])

    def opt_string(self, index: int) -> Optional[str]:
        return opt_string_at(self.args[index])

    def buffer(self, index: int) -> Buffer:
        return deref(self.args[index], Buffer, operation="write")

    def opt_buffer(self, index: int) -> Optional[Buffer]:
        return opt_deref(self.args[index], Buffer, operation="write")

    def out_cell(self, index: int) -> OutCell:
        return deref(self.args[index], OutCell, operation="write")

    def opt_out_cell(self, index: int) -> Optional[OutCell]:
        return opt_deref(self.args[index], OutCell, operation="write")

    def out_sink(self, index: int) -> Optional[Any]:
        """An optional out-parameter that may be an OutCell or a Buffer."""
        return opt_deref(self.args[index], (OutCell, Buffer), operation="write")

    # ------------------------------------------------------------------
    # Handle access
    # ------------------------------------------------------------------
    def handle_value(self, index: int) -> int:
        return self.args[index].raw

    def handle_object(self, index: int, kind: Optional[type] = None) -> Optional[Any]:
        """Resolve a handle parameter; None when invalid (caller fails)."""
        return self.machine.handles.resolve(self.args[index].raw, kind)

    def process_handle(self, index: int) -> Optional["NTProcess"]:
        """Resolve a process handle, honouring the NT pseudo-handle:
        ``0xFFFFFFFF`` (-1) means *the calling process*."""
        from ..process_manager import ProcessObject

        raw = self.args[index].raw
        if raw == INVALID_HANDLE_VALUE:
            return self.process
        obj = self.machine.handles.resolve(raw, ProcessObject)
        return None if obj is None else obj.process

    def new_handle(self, obj: Any) -> int:
        return self.machine.handles.allocate(obj)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Frame {self.sig.name} pid={self.process.pid}>"


# ----------------------------------------------------------------------
# Implementation registry
# ----------------------------------------------------------------------
Implementation = Callable[[Frame], Any]

IMPLEMENTATIONS: dict[str, Implementation] = {}
BLOCKING: set[str] = set()


def k32impl(name: str) -> Callable[[Implementation], Implementation]:
    """Register an implementation for one export by name."""

    def register(fn: Implementation) -> Implementation:
        if name in IMPLEMENTATIONS:
            raise ValueError(f"duplicate implementation for {name}")
        IMPLEMENTATIONS[name] = fn
        if inspect.isgeneratorfunction(fn):
            BLOCKING.add(name)
        return fn

    return register


def lookup(name: str) -> Optional[Implementation]:
    return IMPLEMENTATIONS.get(name)


def is_blocking(name: str) -> bool:
    return name in BLOCKING


# ----------------------------------------------------------------------
# Generic fallback
# ----------------------------------------------------------------------
_REQUIRED_POINTERS = (ParamType.PTR, ParamType.CSTR, ParamType.OUTPTR)
_OPTIONAL_POINTERS = (ParamType.PTR_OPT, ParamType.CSTR_OPT, ParamType.OUTPTR_OPT)


def generic_implementation(frame: Frame) -> int:
    """Type-driven validation, then success.

    This is what every export without a dedicated implementation runs.
    The validation mirrors how an average Win32 API treats its
    parameters, which is what gives corrupted calls to "unimportant"
    functions realistic consequences.
    """
    for spec, arg in zip(frame.sig.params, frame.args):
        ptype = spec.ptype
        if ptype in _REQUIRED_POINTERS:
            deref(arg)  # NULL or wild → access violation
        elif ptype in _OPTIONAL_POINTERS:
            if arg.kind is ArgKind.WILD:
                deref(arg)  # wild → access violation; NULL is legal
        elif ptype is ParamType.HANDLE:
            if not frame.machine.handles.is_valid(arg.raw):
                return frame.fail(ERROR_INVALID_HANDLE)
        elif ptype is ParamType.HANDLE_OPT:
            if arg.raw not in (0, INVALID_HANDLE_VALUE) and \
                    not frame.machine.handles.is_valid(arg.raw):
                return frame.fail(ERROR_INVALID_HANDLE)
        # Integer-family parameters are taken at face value.
    return frame.succeed(1)


__all__ = [
    "Frame",
    "IMPLEMENTATIONS",
    "k32impl",
    "lookup",
    "is_blocking",
    "generic_implementation",
    "Buffer",
    "CString",
    "OutCell",
]

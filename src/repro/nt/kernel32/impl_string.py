"""String and NLS API implementations.

The ``lstr*`` family is special: on NT these entry points wrap their
work in a structured-exception handler and *return failure instead of
crashing* on bad pointers — famously making them survive corruption
that kills ordinary code.  The implementations reproduce that, giving
the fault campaign a class of silently-absorbed pointer corruptions.
"""

from __future__ import annotations

from ..errors import ERROR_INVALID_PARAMETER, StructuredException
from ..memory import Buffer, CString
from . import constants as k
from .impl_files import _write_string
from .runtime import Frame, k32impl


def _guarded_string(frame: Frame, index: int):
    """Read a string param under an lstr-style SEH guard.

    Returns (ok, text): bad pointers yield (False, "") rather than a
    crash.
    """
    try:
        arg = frame.args[index]
        if arg.is_null:
            return True, None
        obj = arg.obj
        if isinstance(obj, CString):
            return True, obj.text
        if isinstance(obj, Buffer):
            return True, bytes(obj.data.split(b"\0", 1)[0]).decode("latin-1")
        return False, ""
    except StructuredException:  # pragma: no cover - defensive
        return False, ""


@k32impl("lstrlenA")
def lstrlen_a(frame: Frame) -> int:
    ok, text = _guarded_string(frame, 0)
    if not ok or text is None:
        return 0
    return len(text)


@k32impl("lstrcpyA")
def lstrcpy_a(frame: Frame) -> int:
    dest = frame.args[0]
    ok, text = _guarded_string(frame, 1)
    if not ok or text is None or not isinstance(dest.obj, Buffer):
        return 0  # lstr SEH guard: fail quietly
    _write_string(dest.obj, text, len(dest.obj.data) or len(text) + 1)
    return dest.raw


@k32impl("lstrcpynA")
def lstrcpyn_a(frame: Frame) -> int:
    dest = frame.args[0]
    ok, text = _guarded_string(frame, 1)
    limit = frame.uint(2)
    if not ok or text is None or not isinstance(dest.obj, Buffer) or limit == 0:
        return 0
    _write_string(dest.obj, text[:limit - 1], limit)
    return dest.raw


@k32impl("lstrcatA")
def lstrcat_a(frame: Frame) -> int:
    dest = frame.args[0]
    ok, text = _guarded_string(frame, 1)
    if not ok or text is None or not isinstance(dest.obj, Buffer):
        return 0
    existing = bytes(dest.obj.data.split(b"\0", 1)[0]).decode("latin-1")
    _write_string(dest.obj, existing + text,
                  len(dest.obj.data) or len(existing + text) + 1)
    return dest.raw


def _compare(frame: Frame, fold_case: bool) -> int:
    ok1, first = _guarded_string(frame, 0)
    ok2, second = _guarded_string(frame, 1)
    if not ok1 or not ok2 or first is None or second is None:
        return 0
    if fold_case:
        first, second = first.lower(), second.lower()
    if first == second:
        return 0
    return -1 if first < second else 1


@k32impl("lstrcmpA")
def lstrcmp_a(frame: Frame) -> int:
    return _compare(frame, fold_case=False)


@k32impl("lstrcmpiA")
def lstrcmpi_a(frame: Frame) -> int:
    return _compare(frame, fold_case=True)


@k32impl("CompareStringA")
def compare_string_a(frame: Frame) -> int:
    locale = frame.uint(0)
    frame.uint(1)
    first = frame.string(2)
    frame.uint(3)
    second = frame.string(4)
    frame.uint(5)
    if locale > 0xFFFF:
        return frame.fail(ERROR_INVALID_PARAMETER, 0)
    if first == second:
        return frame.succeed(k.CSTR_EQUAL)
    return frame.succeed(k.CSTR_LESS_THAN if first < second else k.CSTR_GREATER_THAN)


@k32impl("MultiByteToWideChar")
def multi_byte_to_wide_char(frame: Frame) -> int:
    code_page = frame.uint(0)
    frame.uint(1)
    source = frame.string(2)
    length = frame.uint(3)
    dest = frame.opt_buffer(4)
    capacity = frame.uint(5)
    if code_page not in (0, 1, 437, 850, 1252, 65001):
        return frame.fail(ERROR_INVALID_PARAMETER, 0)
    if length == 0:
        # A zeroed cbMultiByte is rejected — the error-return path.
        return frame.fail(ERROR_INVALID_PARAMETER, 0)
    count = len(source) if length == 0xFFFFFFFF else min(len(source), length)
    if dest is None or capacity == 0:
        return frame.succeed(count + 1)
    _write_string(dest, source[:count], capacity)
    return frame.succeed(min(count, capacity))


@k32impl("WideCharToMultiByte")
def wide_char_to_multi_byte(frame: Frame) -> int:
    code_page = frame.uint(0)
    frame.uint(1)
    source = frame.string(2)
    length = frame.uint(3)
    dest = frame.opt_buffer(4)
    capacity = frame.uint(5)
    frame.opt_string(6)
    frame.opt_out_cell(7)
    if code_page not in (0, 1, 437, 850, 1252, 65001):
        return frame.fail(ERROR_INVALID_PARAMETER, 0)
    if length == 0:
        return frame.fail(ERROR_INVALID_PARAMETER, 0)
    count = len(source) if length == 0xFFFFFFFF else min(len(source), length)
    if dest is None or capacity == 0:
        return frame.succeed(count + 1)
    _write_string(dest, source[:count], capacity)
    return frame.succeed(min(count, capacity))


@k32impl("GetACP")
def get_acp(frame: Frame) -> int:
    return 1252


@k32impl("GetOEMCP")
def get_oemcp(frame: Frame) -> int:
    return 437


@k32impl("GetCPInfo")
def get_cp_info(frame: Frame) -> int:
    code_page = frame.uint(0)
    cell = frame.pointer(1)
    if code_page not in (0, 1, 437, 850, 1252, 65001):
        return frame.fail(ERROR_INVALID_PARAMETER)
    from ..memory import OutCell

    if isinstance(cell, OutCell):
        cell.value = {"MaxCharSize": 1, "DefaultChar": "?"}
    return frame.succeed(1)


@k32impl("FormatMessageA")
def format_message_a(frame: Frame) -> int:
    frame.uint(0)
    frame.opt_pointer(1)
    message_id = frame.uint(2)
    frame.uint(3)
    buffer = frame.buffer(4)
    capacity = frame.uint(5)
    frame.opt_pointer(6)
    from ..errors import error_name

    text = f"{error_name(message_id)} (0x{message_id:08X})"
    if capacity == 0:
        return frame.fail(ERROR_INVALID_PARAMETER, 0)
    return frame.succeed(_write_string(buffer, text, capacity))


@k32impl("GetLocaleInfoA")
def get_locale_info_a(frame: Frame) -> int:
    locale = frame.uint(0)
    frame.uint(1)
    dest = frame.opt_buffer(2)
    capacity = frame.uint(3)
    if locale > 0xFFFF:
        return frame.fail(ERROR_INVALID_PARAMETER, 0)
    text = "en-US"
    if dest is None or capacity == 0:
        return frame.succeed(len(text) + 1)
    return frame.succeed(_write_string(dest, text, capacity))

"""Console and standard-handle API implementations."""

from __future__ import annotations

from ..errors import ERROR_INVALID_HANDLE, ERROR_INVALID_PARAMETER, INVALID_HANDLE_VALUE
from ..memory import Buffer
from ..objects import ConsoleObject
from . import constants as k
from .runtime import Frame, k32impl

_STD_SLOTS = {
    k.STD_INPUT_HANDLE: "stdin",
    k.STD_OUTPUT_HANDLE: "stdout",
    k.STD_ERROR_HANDLE: "stderr",
}


def _std_handles(frame: Frame) -> dict:
    process = frame.process
    table = getattr(process, "_std_handles", None)
    if table is None:
        table = {}
        for slot, name in _STD_SLOTS.items():
            table[slot] = frame.new_handle(ConsoleObject(name))
        process._std_handles = table
    return table


@k32impl("GetStdHandle")
def get_std_handle(frame: Frame) -> int:
    slot = frame.uint(0)
    table = _std_handles(frame)
    handle = table.get(slot)
    if handle is None:
        return frame.fail(ERROR_INVALID_PARAMETER, INVALID_HANDLE_VALUE)
    return frame.succeed(handle)


@k32impl("SetStdHandle")
def set_std_handle(frame: Frame) -> int:
    slot = frame.uint(0)
    if slot not in _STD_SLOTS:
        return frame.fail(ERROR_INVALID_PARAMETER)
    if not frame.machine.handles.is_valid(frame.args[1].raw):
        return frame.fail(ERROR_INVALID_HANDLE)
    _std_handles(frame)[slot] = frame.args[1].raw
    return frame.succeed(1)


@k32impl("WriteConsoleA")
def write_console_a(frame: Frame) -> int:
    console = frame.handle_object(0, ConsoleObject)
    payload = frame.pointer(1)
    count = frame.uint(2)
    if console is None:
        return frame.fail(ERROR_INVALID_HANDLE)
    if isinstance(payload, Buffer):
        console.written.append(bytes(payload.data[:count]))
    else:
        console.written.append(str(payload).encode("latin-1", "replace")[:count])
    cell = frame.opt_out_cell(3)
    if cell is not None:
        cell.value = count
    frame.opt_pointer(4)
    return frame.succeed(1)


@k32impl("SetConsoleCtrlHandler")
def set_console_ctrl_handler(frame: Frame) -> int:
    frame.opt_pointer(0)
    frame.boolean(1)
    return frame.succeed(1)


@k32impl("AllocConsole")
def alloc_console(frame: Frame) -> int:
    return frame.succeed(1)


@k32impl("FreeConsole")
def free_console(frame: Frame) -> int:
    return frame.succeed(1)


@k32impl("SetConsoleTitleA")
def set_console_title_a(frame: Frame) -> int:
    frame.string(0)
    return frame.succeed(1)


@k32impl("GetConsoleMode")
def get_console_mode(frame: Frame) -> int:
    if frame.handle_object(0, ConsoleObject) is None:
        return frame.fail(ERROR_INVALID_HANDLE)
    frame.out_cell(1).value = k.ENABLE_PROCESSED_INPUT | k.ENABLE_LINE_INPUT
    return frame.succeed(1)


@k32impl("SetConsoleMode")
def set_console_mode(frame: Frame) -> int:
    if frame.handle_object(0, ConsoleObject) is None:
        return frame.fail(ERROR_INVALID_HANDLE)
    frame.uint(1)
    return frame.succeed(1)

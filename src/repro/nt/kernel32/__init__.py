"""Simulated KERNEL32.DLL.

``signatures`` holds the export table (the fault space); ``runtime``
holds the dispatch frame and implementation registry; the ``impl_*``
modules register behaviour for every export the workloads call.
Importing this package registers all implementations.
"""

from . import (  # noqa: F401  (imported for their registration side effects)
    impl_console,
    impl_env,
    impl_files,
    impl_memory,
    impl_misc,
    impl_module,
    impl_process,
    impl_profile,
    impl_string,
    impl_sync,
    impl_time,
)
from . import constants
from .runtime import IMPLEMENTATIONS, Frame, generic_implementation, k32impl
from .signatures import (
    REGISTRY,
    TOTAL_EXPORTS,
    TOTAL_INJECTABLE_EXPORTS,
    TOTAL_ZERO_PARAM_EXPORTS,
    FunctionSig,
    ParamSpec,
    ParamType,
    get_signature,
    injectable_signatures,
    iter_signatures,
)

__all__ = [
    "REGISTRY",
    "FunctionSig",
    "ParamSpec",
    "ParamType",
    "get_signature",
    "iter_signatures",
    "injectable_signatures",
    "TOTAL_EXPORTS",
    "TOTAL_ZERO_PARAM_EXPORTS",
    "TOTAL_INJECTABLE_EXPORTS",
    "IMPLEMENTATIONS",
    "Frame",
    "k32impl",
    "generic_implementation",
    "constants",
]

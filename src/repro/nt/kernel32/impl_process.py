"""Process, thread and TLS API implementations.

``CreateProcessA`` is the pivotal call for the Apache workload (the
master spawns its child worker here) and for CGI requests.  Its
corruption semantics follow NT:

- NULL/wild ``lpStartupInfo`` or ``lpProcessInformation`` → access
  violation in the *calling* process;
- both name arguments NULL → ``ERROR_INVALID_PARAMETER``;
- an all-ones creation-flags word → ``ERROR_INVALID_PARAMETER``
  (contradictory flag combinations are rejected);
- a flipped flags word that turns on ``CREATE_SUSPENDED`` → the child
  is created but never scheduled: the parent believes the spawn
  succeeded while no worker ever serves a request.

``TerminateProcess`` honours the NT pseudo-handle: corrupting a child
handle to all-ones makes a process terminate *itself*.
"""

from __future__ import annotations

from ..errors import (
    ERROR_FILE_NOT_FOUND,
    ERROR_INVALID_HANDLE,
    ERROR_INVALID_PARAMETER,
    INVALID_HANDLE_VALUE,
    ProcessExit,
    StructuredException,
    ThreadExit,
)
from ..memory import AccessViolation, OutCell
from ..objects import ThreadEntry, ThreadObject
from . import constants as k
from .runtime import Frame, k32impl


def _resolve_image(app_name, command_line) -> tuple[str, str]:
    """Pick the executable image and the effective command line."""
    if app_name:
        return app_name, command_line or app_name
    first, _, _rest = (command_line or "").partition(" ")
    return first, command_line


@k32impl("CreateProcessA")
def create_process_a(frame: Frame) -> int:
    app_name = frame.opt_string(0)
    command_line = frame.opt_string(1)
    frame.opt_pointer(2)  # process attributes
    frame.opt_pointer(3)  # thread attributes
    frame.boolean(4)      # bInheritHandles (accepted silently)
    flags = frame.uint(5)
    frame.opt_pointer(6)  # environment block
    frame.opt_string(7)   # current directory
    frame.pointer(8)      # STARTUPINFO — required; NULL/wild faults
    proc_info = frame.out_cell(9)

    if app_name is None and not command_line:
        return frame.fail(ERROR_INVALID_PARAMETER)
    if flags == 0xFFFFFFFF:
        # All-ones combines mutually exclusive creation flags.
        return frame.fail(ERROR_INVALID_PARAMETER)
    suspended = bool(flags & k.CREATE_SUSPENDED)

    image, effective_cmdline = _resolve_image(app_name, command_line)
    child = frame.machine.processes.create_from_image(
        image, effective_cmdline, parent=frame.process, suspended=suspended,
    )
    if child is None:
        return frame.fail(ERROR_FILE_NOT_FOUND)
    process_handle = frame.new_handle(child.kernel_object)
    thread_handle = frame.new_handle(
        ThreadObject(child.threads[0] if child.threads else None,
                     name=f"{child.image_name}:main")
    )
    proc_info.value = {
        "hProcess": process_handle,
        "hThread": thread_handle,
        "dwProcessId": child.pid,
        "dwThreadId": child.pid + 1,
    }
    return frame.succeed(1)


@k32impl("ExitProcess")
def exit_process(frame: Frame) -> int:
    raise ProcessExit(frame.uint(0))


@k32impl("TerminateProcess")
def terminate_process(frame: Frame) -> int:
    target = frame.process_handle(0)
    code = frame.uint(1)
    if target is None:
        return frame.fail(ERROR_INVALID_HANDLE)
    if target is frame.process:
        raise ProcessExit(code)
    target.terminate(code)
    return frame.succeed(1)


@k32impl("GetExitCodeProcess")
def get_exit_code_process(frame: Frame) -> int:
    target = frame.process_handle(0)
    cell = frame.out_cell(1)
    if target is None:
        return frame.fail(ERROR_INVALID_HANDLE)
    cell.value = k.STILL_ACTIVE if target.alive else target.exit_code
    return frame.succeed(1)


@k32impl("OpenProcess")
def open_process(frame: Frame) -> int:
    frame.uint(0)
    frame.boolean(1)
    pid = frame.uint(2)
    target = frame.machine.processes.find_by_pid(pid)
    if target is None:
        return frame.fail(ERROR_INVALID_PARAMETER, 0)
    return frame.succeed(frame.new_handle(target.kernel_object))


@k32impl("GetCurrentProcess")
def get_current_process(frame: Frame) -> int:
    return k.CURRENT_PROCESS_PSEUDO_HANDLE


@k32impl("GetCurrentProcessId")
def get_current_process_id(frame: Frame) -> int:
    return frame.process.pid


@k32impl("GetCurrentThread")
def get_current_thread(frame: Frame) -> int:
    return k.CURRENT_THREAD_PSEUDO_HANDLE


@k32impl("GetCurrentThreadId")
def get_current_thread_id(frame: Frame) -> int:
    return frame.process.pid + 1


@k32impl("CreateThread")
def create_thread(frame: Frame) -> int:
    frame.opt_pointer(0)
    frame.uint(1)  # stack size (0 means default)
    entry_arg = frame.args[2]
    frame.opt_pointer(3)
    flags = frame.uint(4)
    tid_cell = frame.opt_out_cell(5)

    suspended = bool(flags & k.CREATE_SUSPENDED)
    entry = entry_arg.obj if isinstance(entry_arg.obj, ThreadEntry) else None
    if entry is None:
        # A corrupted start address: thread creation itself succeeds,
        # then the new thread faults at its first instruction and takes
        # the whole process down (NT semantics for an unhandled
        # exception in any thread).
        def crash_body():
            raise AccessViolation(entry_arg.raw, "execute")
            yield  # pragma: no cover - makes this a generator

        sim_thread = None
        if not suspended:
            sim_thread = frame.process.spawn_thread(crash_body())
        thread_obj = ThreadObject(sim_thread, name="bad-entry")
    else:
        sim_thread = None
        if not suspended:
            sim_thread = frame.process.spawn_thread(entry.body_factory())
        thread_obj = ThreadObject(sim_thread, name=entry.label)

    if tid_cell is not None:
        tid_cell.value = frame.process.pid + 2
    return frame.succeed(frame.new_handle(thread_obj))


@k32impl("ExitThread")
def exit_thread(frame: Frame) -> int:
    raise ThreadExit(frame.uint(0))


@k32impl("TerminateThread")
def terminate_thread(frame: Frame) -> int:
    thread_obj = frame.handle_object(0, ThreadObject)
    frame.uint(1)  # dwExitCode: accepted as-is, killed threads store none
    if thread_obj is None:
        return frame.fail(ERROR_INVALID_HANDLE)
    if thread_obj.sim_thread is not None and thread_obj.sim_thread.alive:
        thread_obj.sim_thread.kill("TerminateThread")
    return frame.succeed(1)


@k32impl("DuplicateHandle")
def duplicate_handle(frame: Frame) -> int:
    frame.process_handle(0)
    source = frame.machine.handles.resolve(frame.args[1].raw)
    frame.process_handle(2)
    cell = frame.out_cell(3)
    frame.uint(4)
    frame.boolean(5)
    frame.uint(6)
    if source is None:
        return frame.fail(ERROR_INVALID_HANDLE)
    cell.value = frame.new_handle(source)
    return frame.succeed(1)


@k32impl("GetStartupInfoA")
def get_startup_info_a(frame: Frame) -> int:
    cell = frame.pointer(0)
    if isinstance(cell, OutCell):
        cell.value = {"lpDesktop": "WinSta0\\Default", "dwFlags": 0}
    return 0


@k32impl("GetCommandLineA")
def get_command_line_a(frame: Frame) -> int:
    from ..memory import CString

    return frame.machine.address_space.intern(
        CString(frame.process.command_line)
    )


@k32impl("TlsAlloc")
def tls_alloc(frame: Frame) -> int:
    return frame.succeed(frame.process.tls.alloc())


@k32impl("TlsFree")
def tls_free(frame: Frame) -> int:
    if not frame.process.tls.free(frame.uint(0)):
        return frame.fail(ERROR_INVALID_PARAMETER)
    return frame.succeed(1)


@k32impl("TlsSetValue")
def tls_set_value(frame: Frame) -> int:
    index = frame.uint(0)
    if index not in frame.process.tls.values:
        return frame.fail(ERROR_INVALID_PARAMETER)
    frame.process.tls.values[index] = frame.args[1].raw
    return frame.succeed(1)


@k32impl("TlsGetValue")
def tls_get_value(frame: Frame) -> int:
    index = frame.uint(0)
    value = frame.process.tls.values.get(index)
    if value is None:
        return frame.fail(ERROR_INVALID_PARAMETER, 0)
    return frame.succeed(value)


@k32impl("SetPriorityClass")
def set_priority_class(frame: Frame) -> int:
    if frame.process_handle(0) is None:
        return frame.fail(ERROR_INVALID_HANDLE)
    frame.uint(1)
    return frame.succeed(1)


@k32impl("GetPriorityClass")
def get_priority_class(frame: Frame) -> int:
    if frame.process_handle(0) is None:
        return frame.fail(ERROR_INVALID_HANDLE, 0)
    return frame.succeed(k.NORMAL_PRIORITY_CLASS)


@k32impl("SetThreadPriority")
def set_thread_priority(frame: Frame) -> int:
    raw = frame.args[0].raw
    if raw != k.CURRENT_THREAD_PSEUDO_HANDLE and \
            frame.handle_object(0, ThreadObject) is None:
        return frame.fail(ERROR_INVALID_HANDLE)
    frame.uint(1)
    return frame.succeed(1)


@k32impl("ResumeThread")
def resume_thread(frame: Frame) -> int:
    thread_obj = frame.handle_object(0, ThreadObject)
    if thread_obj is None:
        return frame.fail(ERROR_INVALID_HANDLE, 0xFFFFFFFF)
    return frame.succeed(0)


@k32impl("WinExec")
def win_exec(frame: Frame) -> int:
    command = frame.string(0)
    frame.uint(1)
    image, cmdline = _resolve_image(None, command)
    child = frame.machine.processes.create_from_image(
        image, cmdline, parent=frame.process,
    )
    if child is None:
        return frame.fail(ERROR_FILE_NOT_FOUND, 2)
    return frame.succeed(33)  # >31 signals success for WinExec


@k32impl("RaiseException")
def raise_exception(frame: Frame) -> int:
    code = frame.uint(0)
    frame.uint(1)
    frame.uint(2)
    frame.opt_pointer(3)
    raise StructuredException(f"RaiseException(0x{code:08X})", status=code)

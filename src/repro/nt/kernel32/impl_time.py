"""Time and performance-counter API implementations.

All values derive from the virtual clock, so time read through the API
is consistent with the engine's notion of when things happen.
"""

from __future__ import annotations

from ..memory import OutCell
from .runtime import Frame, k32impl

_QPC_FREQUENCY = 1_193_182  # the classic 8253 PIT frequency NT reports
# Virtual time zero corresponds to this wall-clock instant (the paper's
# experiments ran in 1999); only differences ever matter.
_EPOCH_FILETIME = 125_000_000_000_000_000


def _fill_systemtime(cell, now: float) -> None:
    total_ms = int(now * 1000)
    seconds, ms = divmod(total_ms, 1000)
    minutes, sec = divmod(seconds, 60)
    hours, minute = divmod(minutes, 60)
    cell.value = {
        "wYear": 1999, "wMonth": 5, "wDay": 17,
        "wHour": hours % 24, "wMinute": minute,
        "wSecond": sec, "wMilliseconds": ms,
    }


@k32impl("GetTickCount")
def get_tick_count(frame: Frame) -> int:
    return int(frame.machine.engine.now * 1000) & 0xFFFFFFFF


@k32impl("GetSystemTime")
def get_system_time(frame: Frame) -> int:
    cell = frame.pointer(0)
    if isinstance(cell, OutCell):
        _fill_systemtime(cell, frame.machine.engine.now)
    return 0


@k32impl("GetLocalTime")
def get_local_time(frame: Frame) -> int:
    cell = frame.pointer(0)
    if isinstance(cell, OutCell):
        _fill_systemtime(cell, frame.machine.engine.now)
    return 0


@k32impl("QueryPerformanceCounter")
def query_performance_counter(frame: Frame) -> int:
    frame.out_cell(0).value = int(frame.machine.engine.now * _QPC_FREQUENCY)
    return frame.succeed(1)


@k32impl("QueryPerformanceFrequency")
def query_performance_frequency(frame: Frame) -> int:
    frame.out_cell(0).value = _QPC_FREQUENCY
    return frame.succeed(1)


@k32impl("GetTimeZoneInformation")
def get_time_zone_information(frame: Frame) -> int:
    cell = frame.pointer(0)
    if isinstance(cell, OutCell):
        cell.value = {"Bias": 300, "StandardName": "Eastern Standard Time"}
    return frame.succeed(1)  # TIME_ZONE_ID_STANDARD


@k32impl("FileTimeToSystemTime")
def file_time_to_system_time(frame: Frame) -> int:
    frame.pointer(0)
    cell = frame.pointer(1)
    if isinstance(cell, OutCell):
        _fill_systemtime(cell, frame.machine.engine.now)
    return frame.succeed(1)


@k32impl("SystemTimeToFileTime")
def system_time_to_file_time(frame: Frame) -> int:
    frame.pointer(0)
    cell = frame.pointer(1)
    if isinstance(cell, OutCell):
        cell.value = _EPOCH_FILETIME + int(frame.machine.engine.now * 10_000_000)
    return frame.succeed(1)

"""Error-mode, debugging, pipe and miscellaneous API implementations."""

from __future__ import annotations

from ..errors import (
    ERROR_INVALID_HANDLE,
    ERROR_INVALID_PARAMETER,
    ProcessExit,
    StructuredException,
)
from ..memory import ArgKind
from ..objects import PipeObject
from . import constants as k
from .runtime import Frame, k32impl


@k32impl("GetLastError")
def get_last_error(frame: Frame) -> int:
    return frame.process.last_error


@k32impl("SetLastError")
def set_last_error(frame: Frame) -> int:
    frame.process.last_error = frame.uint(0)
    return 0


@k32impl("SetErrorMode")
def set_error_mode(frame: Frame) -> int:
    previous = getattr(frame.process, "_error_mode", 0)
    frame.process._error_mode = frame.uint(0)
    return previous


@k32impl("SetUnhandledExceptionFilter")
def set_unhandled_exception_filter(frame: Frame) -> int:
    arg = frame.args[0]
    if arg.kind is ArgKind.WILD:
        # Installing a wild filter is silent now; the process would
        # only discover it during a crash.  We keep the simple model:
        # the installation itself succeeds.
        pass
    previous = getattr(frame.process, "_exception_filter", 0)
    frame.process._exception_filter = arg.raw
    return previous


@k32impl("UnhandledExceptionFilter")
def unhandled_exception_filter(frame: Frame) -> int:
    frame.pointer(0)
    return 1  # EXCEPTION_EXECUTE_HANDLER


@k32impl("OutputDebugStringA")
def output_debug_string_a(frame: Frame) -> int:
    # Real OutputDebugString is SEH-guarded: bad pointers are absorbed.
    arg = frame.args[0]
    if arg.kind is ArgKind.OBJECT:
        try:
            text = frame.string(0)
        except StructuredException:  # pragma: no cover - defensive
            return 0
        frame.machine.debug_log.append(
            (frame.machine.engine.now, frame.process.pid, text)
        )
    return 0


@k32impl("DebugBreak")
def debug_break(frame: Frame) -> int:
    # No debugger is attached: the breakpoint exception is unhandled.
    raise StructuredException("DebugBreak", status=k.STATUS_BREAKPOINT)


@k32impl("IsDebuggerPresent")
def is_debugger_present(frame: Frame) -> int:
    return 0


@k32impl("Beep")
def beep(frame: Frame) -> int:
    frame.uint(0)
    frame.uint(1)
    return frame.succeed(1)


@k32impl("MulDiv")
def mul_div(frame: Frame) -> int:
    number = frame.uint(0)
    numerator = frame.uint(1)
    denominator = frame.uint(2)
    if denominator == 0:
        return 0xFFFFFFFF
    return (number * numerator // denominator) & 0xFFFFFFFF


@k32impl("FatalAppExitA")
def fatal_app_exit_a(frame: Frame) -> int:
    frame.uint(0)
    frame.string(1)
    raise ProcessExit(255)


@k32impl("FatalExit")
def fatal_exit(frame: Frame) -> int:
    raise ProcessExit(frame.uint(0))


@k32impl("CreatePipe")
def create_pipe(frame: Frame) -> int:
    read_cell = frame.out_cell(0)
    write_cell = frame.out_cell(1)
    frame.opt_pointer(2)
    frame.uint(3)
    pipe = PipeObject()
    read_cell.value = frame.new_handle(pipe)
    write_cell.value = frame.new_handle(pipe)
    return frame.succeed(1)


@k32impl("PeekNamedPipe")
def peek_named_pipe(frame: Frame) -> int:
    pipe = frame.handle_object(0, PipeObject)
    if pipe is None:
        return frame.fail(ERROR_INVALID_HANDLE)
    frame.opt_buffer(1)
    frame.uint(2)
    for index in (3, 4, 5):
        cell = frame.opt_out_cell(index)
        if cell is not None:
            cell.value = len(pipe.buffer)
    return frame.succeed(1)


@k32impl("GetLogicalDrives")
def get_logical_drives(frame: Frame) -> int:
    return 0b101  # A: and C:


@k32impl("GetHandleInformation")
def get_handle_information(frame: Frame) -> int:
    if frame.handle_object(0) is None:
        return frame.fail(ERROR_INVALID_HANDLE)
    frame.out_cell(1).value = 0
    return frame.succeed(1)


@k32impl("SetHandleInformation")
def set_handle_information(frame: Frame) -> int:
    if frame.handle_object(0) is None:
        return frame.fail(ERROR_INVALID_HANDLE)
    frame.uint(1)
    frame.uint(2)
    return frame.succeed(1)


@k32impl("SetHandleCount")
def set_handle_count(frame: Frame) -> int:
    return frame.uint(0)


@k32impl("GetSystemDefaultLCID")
def get_system_default_lcid(frame: Frame) -> int:
    return 0x0409


@k32impl("GetUserDefaultLCID")
def get_user_default_lcid(frame: Frame) -> int:
    return 0x0409


@k32impl("GetSystemDefaultLangID")
def get_system_default_lang_id(frame: Frame) -> int:
    return 0x0409


@k32impl("GetUserDefaultLangID")
def get_user_default_lang_id(frame: Frame) -> int:
    return 0x0409


@k32impl("GetThreadLocale")
def get_thread_locale(frame: Frame) -> int:
    return 0x0409


@k32impl("SetThreadLocale")
def set_thread_locale(frame: Frame) -> int:
    locale = frame.uint(0)
    if locale > 0xFFFF:
        return frame.fail(ERROR_INVALID_PARAMETER)
    return frame.succeed(1)

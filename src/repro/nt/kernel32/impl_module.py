"""Module (DLL) API implementations."""

from __future__ import annotations

from ..errors import (
    ERROR_INSUFFICIENT_BUFFER,
    ERROR_INVALID_HANDLE,
    ERROR_MOD_NOT_FOUND,
    ERROR_PATH_NOT_FOUND,
)
from ..objects import ModuleObject, ProcStub
from .runtime import Frame, k32impl
from .impl_files import _write_string

ERROR_PROC_NOT_FOUND = 127


def _load(frame: Frame, name: str) -> int:
    key = name.lower()
    if not (key.endswith(".dll") or key.endswith(".drv") or "." not in key):
        return frame.fail(ERROR_MOD_NOT_FOUND, 0)
    module = frame.machine.loaded_modules.get(key)
    if module is None:
        module = ModuleObject(name)
        frame.machine.loaded_modules[key] = module
    return frame.succeed(frame.new_handle(module))


@k32impl("LoadLibraryA")
def load_library_a(frame: Frame) -> int:
    return _load(frame, frame.string(0))


@k32impl("LoadLibraryExA")
def load_library_ex_a(frame: Frame) -> int:
    name = frame.string(0)
    raw_file = frame.args[1].raw
    if raw_file not in (0, 0xFFFFFFFF) and not frame.machine.handles.is_valid(raw_file):
        return frame.fail(ERROR_INVALID_HANDLE, 0)
    frame.uint(2)
    return _load(frame, name)


@k32impl("FreeLibrary")
def free_library(frame: Frame) -> int:
    module = frame.handle_object(0, ModuleObject)
    if module is None:
        return frame.fail(ERROR_INVALID_HANDLE)
    frame.machine.handles.close(frame.args[0].raw)
    return frame.succeed(1)


@k32impl("GetModuleHandleA")
def get_module_handle_a(frame: Frame) -> int:
    name = frame.opt_string(0)
    if name is None:
        name = frame.process.image_name
    return _load(frame, name if "." in name else f"{name}.dll")


@k32impl("GetModuleFileNameA")
def get_module_file_name_a(frame: Frame) -> int:
    raw_module = frame.args[0].raw
    if raw_module != 0 and frame.handle_object(0, ModuleObject) is None:
        return frame.fail(ERROR_INVALID_HANDLE, 0)
    buffer = frame.buffer(1)
    capacity = frame.uint(2)
    path = f"C:\\Program Files\\{frame.process.image_name}"
    if capacity == 0:
        return frame.fail(ERROR_INSUFFICIENT_BUFFER, 0)
    return frame.succeed(_write_string(buffer, path[:capacity - 1], capacity))


@k32impl("GetProcAddress")
def get_proc_address(frame: Frame) -> int:
    module = frame.handle_object(0, ModuleObject)
    proc_name = frame.string(1)
    if module is None:
        return frame.fail(ERROR_INVALID_HANDLE, 0)
    if not proc_name:
        return frame.fail(ERROR_PROC_NOT_FOUND, 0)
    stub = ProcStub(module.path, proc_name)
    return frame.succeed(frame.machine.address_space.intern(stub))


@k32impl("DisableThreadLibraryCalls")
def disable_thread_library_calls(frame: Frame) -> int:
    if frame.handle_object(0, ModuleObject) is None:
        return frame.fail(ERROR_INVALID_HANDLE)
    return frame.succeed(1)

"""File, directory and file-mapping API implementations.

The richest corruption surface for the web servers: configuration files
and documents are opened and read here, so a corrupted disposition,
access mask, buffer pointer or byte count turns into a missing config,
a short read (content served with the wrong checksum), an error return
the application may or may not handle, or an access violation.
"""

from __future__ import annotations

from ..errors import (
    AccessViolation,
    ERROR_ACCESS_DENIED,
    ERROR_ALREADY_EXISTS,
    ERROR_FILE_NOT_FOUND,
    ERROR_INVALID_HANDLE,
    ERROR_INVALID_PARAMETER,
    ERROR_NOT_ENOUGH_MEMORY,
    INVALID_HANDLE_VALUE,
)
from ..memory import ArgKind, Buffer, OutCell
from ..objects import FileMappingObject, FileObject, FindObject, PipeObject
from . import constants as k
from .runtime import Frame, k32impl

ERROR_NO_MORE_FILES = 18


def _file_from_handle(frame: Frame, index: int):
    return frame.handle_object(index, FileObject)


@k32impl("CreateFileA")
def create_file_a(frame: Frame) -> int:
    path = frame.string(0)
    access = frame.uint(1)
    frame.uint(2)  # share mode: accepted as-is
    frame.opt_pointer(3)  # security attributes: NULL legal, wild faults
    disposition = frame.uint(4)
    frame.uint(5)  # flags-and-attributes
    template = frame.args[6].raw
    if template not in (0, INVALID_HANDLE_VALUE) and \
            not frame.machine.handles.is_valid(template):
        return frame.fail(ERROR_INVALID_HANDLE, INVALID_HANDLE_VALUE)

    fs = frame.machine.fs
    exists = fs.exists(path)
    if disposition == k.OPEN_EXISTING:
        if not exists:
            return frame.fail(ERROR_FILE_NOT_FOUND, INVALID_HANDLE_VALUE)
        data = fs.read_file(path)
    elif disposition == k.CREATE_NEW:
        if exists:
            return frame.fail(ERROR_ALREADY_EXISTS, INVALID_HANDLE_VALUE)
        data = b""
        fs.write_file(path, data)
    elif disposition in (k.CREATE_ALWAYS, k.TRUNCATE_EXISTING):
        if disposition == k.TRUNCATE_EXISTING and not exists:
            return frame.fail(ERROR_FILE_NOT_FOUND, INVALID_HANDLE_VALUE)
        data = b""
        fs.write_file(path, data)
    elif disposition == k.OPEN_ALWAYS:
        data = fs.read_file(path) or b""
        if not exists:
            fs.write_file(path, data)
    else:
        # A corrupted disposition word is rejected, as on NT.
        return frame.fail(ERROR_INVALID_PARAMETER, INVALID_HANDLE_VALUE)

    file_obj = FileObject(
        path, data,
        writable=bool(access & k.GENERIC_WRITE),
        # A zeroed access mask opens the file for attribute queries
        # only; subsequent reads fail with ERROR_ACCESS_DENIED.
        readable=bool(access & k.GENERIC_READ),
    )
    return frame.succeed(frame.new_handle(file_obj))


@k32impl("CreateFileW")
def create_file_w(frame: Frame) -> int:
    return create_file_a(frame)


def _read_common(frame: Frame, h_index: int, buf_index: int, count_index: int,
                 read_cell_index: int | None) -> int:
    file_obj = _file_from_handle(frame, h_index)
    buffer = frame.buffer(buf_index)
    count = frame.uint(count_index)
    if file_obj is None:
        pipe = frame.handle_object(h_index, PipeObject)
        if pipe is not None:
            chunk = bytes(pipe.buffer[:count])
            del pipe.buffer[:len(chunk)]
            buffer.data[:len(chunk)] = chunk
            if read_cell_index is not None:
                cell = frame.opt_out_cell(read_cell_index)
                if cell is not None:
                    cell.value = len(chunk)
            return frame.succeed(1)
        return frame.fail(ERROR_INVALID_HANDLE)
    if not getattr(file_obj, "readable", True):
        return frame.fail(ERROR_ACCESS_DENIED)
    if count > len(buffer.data):
        # Reading more bytes than the caller's buffer holds overruns it.
        raise AccessViolation(frame.args[buf_index].raw + len(buffer.data),
                              "write")
    chunk = file_obj.read(count)
    buffer.data[:len(chunk)] = chunk
    if len(chunk) < len(buffer.data):
        # Bytes beyond the read are unspecified; zero them so a short
        # (corrupted-length) read visibly changes the content checksum.
        for i in range(len(chunk), len(buffer.data)):
            buffer.data[i] = 0
    if read_cell_index is not None:
        cell = frame.opt_out_cell(read_cell_index)
        if cell is not None:
            cell.value = len(chunk)
    return frame.succeed(1)


@k32impl("ReadFile")
def read_file(frame: Frame) -> int:
    frame.opt_pointer(4)  # lpOverlapped
    return _read_common(frame, 0, 1, 2, 3)


@k32impl("ReadFileEx")
def read_file_ex(frame: Frame) -> int:
    frame.pointer(3)       # lpOverlapped is required for the Ex variant
    frame.opt_pointer(4)   # completion routine
    return _read_common(frame, 0, 1, 2, None)


@k32impl("WriteFile")
def write_file(frame: Frame) -> int:
    file_obj = _file_from_handle(frame, 0)
    payload_obj = frame.pointer(1)
    count = frame.uint(2)
    frame.opt_pointer(4)
    if isinstance(payload_obj, Buffer):
        data = bytes(payload_obj.data)
    else:
        data = str(payload_obj).encode("latin-1", "replace")
    if count > len(data):
        raise AccessViolation(frame.args[1].raw + len(data), "read")
    data = data[:count]
    if file_obj is None:
        pipe = frame.handle_object(0, PipeObject)
        if pipe is None:
            console = frame.handle_object(0)
            if console is not None and getattr(console, "kind", "") == "console":
                console.written.append(data)
                written = len(data)
            else:
                return frame.fail(ERROR_INVALID_HANDLE)
        else:
            pipe.buffer.extend(data)
            written = len(data)
    else:
        if not file_obj.writable:
            return frame.fail(ERROR_ACCESS_DENIED)
        written = file_obj.write(data)
    cell = frame.opt_out_cell(3)
    if cell is not None:
        cell.value = written
    return frame.succeed(1)


@k32impl("WriteFileEx")
def write_file_ex(frame: Frame) -> int:
    file_obj = _file_from_handle(frame, 0)
    payload_obj = frame.pointer(1)
    count = frame.uint(2)
    frame.pointer(3)
    frame.opt_pointer(4)
    if file_obj is None:
        return frame.fail(ERROR_INVALID_HANDLE)
    if not file_obj.writable:
        return frame.fail(ERROR_ACCESS_DENIED)
    data = bytes(payload_obj.data) if isinstance(payload_obj, Buffer) else b""
    file_obj.write(data[:count])
    return frame.succeed(1)


@k32impl("CloseHandle")
def close_handle(frame: Frame) -> int:
    raw = frame.args[0].raw
    obj = frame.machine.handles.resolve(raw)
    if obj is None:
        return frame.fail(ERROR_INVALID_HANDLE)
    if isinstance(obj, FileObject) and obj.writable and not obj.deleted:
        frame.machine.fs.write_file(obj.path, bytes(obj.data))
    frame.machine.handles.close(raw)
    return frame.succeed(1)


@k32impl("GetFileSize")
def get_file_size(frame: Frame) -> int:
    file_obj = _file_from_handle(frame, 0)
    if file_obj is None:
        return frame.fail(ERROR_INVALID_HANDLE, k.INVALID_FILE_SIZE)
    cell = frame.opt_out_cell(1)
    if cell is not None:
        cell.value = 0
    return frame.succeed(file_obj.size)


@k32impl("GetFileType")
def get_file_type(frame: Frame) -> int:
    obj = frame.handle_object(0)
    if obj is None:
        return frame.fail(ERROR_INVALID_HANDLE, k.FILE_TYPE_UNKNOWN)
    if isinstance(obj, FileObject):
        return frame.succeed(k.FILE_TYPE_DISK)
    if isinstance(obj, PipeObject):
        return frame.succeed(k.FILE_TYPE_PIPE)
    return frame.succeed(k.FILE_TYPE_CHAR)


@k32impl("SetFilePointer")
def set_file_pointer(frame: Frame) -> int:
    file_obj = _file_from_handle(frame, 0)
    if file_obj is None:
        return frame.fail(ERROR_INVALID_HANDLE, k.INVALID_SET_FILE_POINTER)
    distance = frame.uint(1)
    if distance >= 0x80000000:
        distance -= 0x100000000  # the LONG parameter is signed
    frame.opt_out_cell(2)
    method = frame.uint(3)
    if method == k.FILE_BEGIN:
        target = distance
    elif method == k.FILE_CURRENT:
        target = file_obj.position + distance
    elif method == k.FILE_END:
        target = file_obj.size + distance
    else:
        return frame.fail(ERROR_INVALID_PARAMETER, k.INVALID_SET_FILE_POINTER)
    if target < 0:
        return frame.fail(ERROR_INVALID_PARAMETER, k.INVALID_SET_FILE_POINTER)
    file_obj.position = target
    return frame.succeed(target)


@k32impl("SetEndOfFile")
def set_end_of_file(frame: Frame) -> int:
    file_obj = _file_from_handle(frame, 0)
    if file_obj is None:
        return frame.fail(ERROR_INVALID_HANDLE)
    del file_obj.data[file_obj.position:]
    return frame.succeed(1)


@k32impl("FlushFileBuffers")
def flush_file_buffers(frame: Frame) -> int:
    file_obj = _file_from_handle(frame, 0)
    if file_obj is None:
        return frame.fail(ERROR_INVALID_HANDLE)
    if file_obj.writable:
        frame.machine.fs.write_file(file_obj.path, bytes(file_obj.data))
    return frame.succeed(1)


@k32impl("DeleteFileA")
def delete_file_a(frame: Frame) -> int:
    path = frame.string(0)
    if not frame.machine.fs.delete(path):
        return frame.fail(ERROR_FILE_NOT_FOUND)
    return frame.succeed(1)


@k32impl("MoveFileA")
def move_file_a(frame: Frame) -> int:
    src = frame.string(0)
    dst = frame.string(1)
    data = frame.machine.fs.read_file(src)
    if data is None:
        return frame.fail(ERROR_FILE_NOT_FOUND)
    frame.machine.fs.write_file(dst, data)
    frame.machine.fs.delete(src)
    return frame.succeed(1)


@k32impl("CopyFileA")
def copy_file_a(frame: Frame) -> int:
    src = frame.string(0)
    dst = frame.string(1)
    fail_if_exists = frame.boolean(2)
    data = frame.machine.fs.read_file(src)
    if data is None:
        return frame.fail(ERROR_FILE_NOT_FOUND)
    if fail_if_exists and frame.machine.fs.exists(dst):
        return frame.fail(ERROR_ALREADY_EXISTS)
    frame.machine.fs.write_file(dst, data)
    return frame.succeed(1)


@k32impl("GetFileAttributesA")
def get_file_attributes_a(frame: Frame) -> int:
    path = frame.string(0)
    if not frame.machine.fs.exists(path):
        return frame.fail(ERROR_FILE_NOT_FOUND, k.INVALID_FILE_ATTRIBUTES)
    return frame.succeed(k.FILE_ATTRIBUTE_NORMAL)


@k32impl("SetFileAttributesA")
def set_file_attributes_a(frame: Frame) -> int:
    path = frame.string(0)
    frame.uint(1)
    if not frame.machine.fs.exists(path):
        return frame.fail(ERROR_FILE_NOT_FOUND)
    return frame.succeed(1)


@k32impl("FindFirstFileA")
def find_first_file_a(frame: Frame) -> int:
    pattern = frame.string(0)
    out = frame.out_cell(1)
    prefix = pattern.rsplit("\\", 1)[0] if "\\" in pattern else pattern
    matches = list(frame.machine.fs.list_dir(prefix))
    if not matches:
        return frame.fail(ERROR_FILE_NOT_FOUND, INVALID_HANDLE_VALUE)
    find_obj = FindObject(matches)
    out.value = find_obj.next_match()
    return frame.succeed(frame.new_handle(find_obj))


@k32impl("FindNextFileA")
def find_next_file_a(frame: Frame) -> int:
    find_obj = frame.handle_object(0, FindObject)
    out = frame.out_cell(1)
    if find_obj is None:
        return frame.fail(ERROR_INVALID_HANDLE)
    match = find_obj.next_match()
    if match is None:
        return frame.fail(ERROR_NO_MORE_FILES)
    out.value = match
    return frame.succeed(1)


@k32impl("FindClose")
def find_close(frame: Frame) -> int:
    if frame.handle_object(0, FindObject) is None:
        return frame.fail(ERROR_INVALID_HANDLE)
    frame.machine.handles.close(frame.args[0].raw)
    return frame.succeed(1)


def _write_string(buffer: Buffer, text: str, capacity: int) -> int:
    """NUL-terminated copy bounded by a caller-declared capacity."""
    encoded = text.encode("latin-1", "replace")[:max(capacity - 1, 0)]
    buffer.data[:len(encoded)] = encoded
    if capacity > 0 and len(buffer.data) > len(encoded):
        buffer.data[len(encoded)] = 0
    return len(encoded)


@k32impl("GetFullPathNameA")
def get_full_path_name_a(frame: Frame) -> int:
    name = frame.string(0)
    capacity = frame.uint(1)
    full = name if "\\" in name else f"C:\\{name}"
    if capacity <= len(full):
        # Returns the size needed — not an error (real semantics; a
        # zeroed buffer length silently degrades into a no-op).
        frame.opt_buffer(2)  # a wild buffer pointer still faults
        return frame.succeed(len(full) + 1)
    buffer = frame.buffer(2)
    frame.opt_out_cell(3)
    return frame.succeed(_write_string(buffer, full, capacity))


@k32impl("SearchPathA")
def search_path_a(frame: Frame) -> int:
    frame.opt_string(0)
    name = frame.string(1)
    frame.opt_string(2)
    capacity = frame.uint(3)
    if not frame.machine.fs.exists(name) and not frame.machine.fs.exists(f"C:\\{name}"):
        return frame.fail(ERROR_FILE_NOT_FOUND, 0)
    full = name if "\\" in name else f"C:\\{name}"
    if capacity <= len(full):
        return frame.succeed(len(full) + 1)
    buffer = frame.buffer(4)
    frame.opt_out_cell(5)
    return frame.succeed(_write_string(buffer, full, capacity))


@k32impl("GetTempPathA")
def get_temp_path_a(frame: Frame) -> int:
    capacity = frame.uint(0)
    temp = "C:\\TEMP\\"
    if capacity <= len(temp):
        return frame.succeed(len(temp) + 1)
    return frame.succeed(_write_string(frame.buffer(1), temp, capacity))


@k32impl("GetTempFileNameA")
def get_temp_file_name_a(frame: Frame) -> int:
    path = frame.string(0)
    prefix = frame.string(1)
    unique = frame.uint(2) or 1
    buffer = frame.buffer(3)
    name = f"{path}\\{prefix}{unique:04X}.tmp"
    frame.machine.fs.write_file(name, b"")
    _write_string(buffer, name, len(buffer.data) or len(name) + 1)
    return frame.succeed(unique)


@k32impl("CreateDirectoryA")
def create_directory_a(frame: Frame) -> int:
    frame.string(0)
    frame.opt_pointer(1)
    return frame.succeed(1)


@k32impl("GetCurrentDirectoryA")
def get_current_directory_a(frame: Frame) -> int:
    capacity = frame.uint(0)
    current = "C:\\WINNT\\system32"
    if capacity <= len(current):
        return frame.succeed(len(current) + 1)
    return frame.succeed(_write_string(frame.buffer(1), current, capacity))


@k32impl("SetCurrentDirectoryA")
def set_current_directory_a(frame: Frame) -> int:
    frame.string(0)
    return frame.succeed(1)


@k32impl("GetDriveTypeA")
def get_drive_type_a(frame: Frame) -> int:
    frame.opt_string(0)
    return frame.succeed(k.DRIVE_FIXED)


@k32impl("GetDiskFreeSpaceA")
def get_disk_free_space_a(frame: Frame) -> int:
    frame.opt_string(0)
    values = (32, 512, 1 << 20, 1 << 21)
    for index, value in enumerate(values, start=1):
        cell = frame.opt_out_cell(index)
        if cell is not None:
            cell.value = value
    return frame.succeed(1)


@k32impl("GetVolumeInformationA")
def get_volume_information_a(frame: Frame) -> int:
    frame.opt_string(0)
    name_buf = frame.opt_buffer(1)
    if name_buf is not None:
        _write_string(name_buf, "SYSTEM", frame.uint(2))
    for index in (3, 4, 5):
        cell = frame.opt_out_cell(index)
        if cell is not None:
            cell.value = 0x1234ABCD if index == 3 else 255
    fs_buf = frame.opt_buffer(6)
    if fs_buf is not None:
        _write_string(fs_buf, "NTFS", frame.uint(7))
    return frame.succeed(1)


@k32impl("CreateFileMappingA")
def create_file_mapping_a(frame: Frame) -> int:
    backing = _file_from_handle(frame, 0)
    frame.opt_pointer(1)
    frame.uint(2)
    frame.uint(3)  # dwMaximumSizeHigh: accepted as-is, sizes stay < 2**32
    size = frame.uint(4) or (backing.size if backing is not None else 0)
    frame.opt_string(5)
    if backing is None and frame.args[0].raw not in (0, INVALID_HANDLE_VALUE):
        return frame.fail(ERROR_INVALID_HANDLE, 0)
    if size > 1 << 28:
        return frame.fail(ERROR_NOT_ENOUGH_MEMORY, 0)
    mapping = FileMappingObject(backing, size)
    return frame.succeed(frame.new_handle(mapping))


@k32impl("MapViewOfFile")
def map_view_of_file(frame: Frame) -> int:
    mapping = frame.handle_object(0, FileMappingObject)
    frame.uint(1)  # dwDesiredAccess: every simulated view is read/write
    frame.uint(2)  # dwFileOffsetHigh: accepted as-is, views start at 0
    frame.uint(3)  # dwFileOffsetLow: accepted as-is, views start at 0
    frame.uint(4)  # dwNumberOfBytesToMap: 0 = whole mapping, always whole
    if mapping is None:
        return frame.fail(ERROR_INVALID_HANDLE, 0)
    data = bytes(mapping.backing.data) if mapping.backing else b"\0" * mapping.size
    view = Buffer(data, label="file-view")
    return frame.succeed(frame.machine.address_space.intern(view))


@k32impl("UnmapViewOfFile")
def unmap_view_of_file(frame: Frame) -> int:
    arg = frame.args[0]
    if arg.kind is not ArgKind.OBJECT:
        return frame.fail(ERROR_INVALID_PARAMETER)
    frame.machine.address_space.free(arg.raw)
    return frame.succeed(1)


@k32impl("FlushViewOfFile")
def flush_view_of_file(frame: Frame) -> int:
    frame.pointer(0)
    frame.uint(1)
    return frame.succeed(1)


@k32impl("GetOverlappedResult")
def get_overlapped_result(frame: Frame) -> int:
    if frame.handle_object(0) is None:
        return frame.fail(ERROR_INVALID_HANDLE)
    frame.pointer(1)
    frame.out_cell(2).value = 0
    frame.boolean(3)
    return frame.succeed(1)


@k32impl("CompareFileTime")
def compare_file_time(frame: Frame) -> int:
    frame.pointer(0)
    frame.pointer(1)
    return 0


@k32impl("GetSystemTimeAsFileTime")
def get_system_time_as_file_time(frame: Frame) -> int:
    cell = frame.out_cell(0)
    cell.value = int(frame.machine.engine.now * 10_000_000)
    return frame.succeed(1)

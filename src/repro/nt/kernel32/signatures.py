"""Signature registry for the simulated KERNEL32.DLL.

The paper's DTS enumerates the export table of ``KERNEL32.dll`` on the
target machine: *"On our machine, KERNEL32.dll contains 681 functions.
Of those 681 functions, 130 functions had no parameters and thus were
not candidates for function parameter corruption.  The remaining 551
functions were injected."*  This module reproduces that fault space.

Each entry is a compact one-line signature string::

    CreateFileA(lpFileName:S, dwDesiredAccess:F, dwShareMode:F,
                lpSecurityAttributes:P?, dwCreationDisposition:I,
                dwFlagsAndAttributes:F, hTemplateFile:H?)

Parameter type codes (see :class:`ParamType`):

====  =============================================================
code  meaning
====  =============================================================
H     handle, must be valid
H?    handle, NULL permitted (optional template/inherit handles)
P     pointer, dereferenced (NULL or wild faults)
P?    pointer, NULL permitted and means "parameter absent"
S     ``LPCSTR``-style string pointer, dereferenced
S?    string pointer, NULL permitted
O     out-pointer the function writes through (NULL/wild faults)
O?    out-pointer, NULL permitted ("caller doesn't want the value")
I     plain integer (enum, ordinal, id, disposition)
Z     byte count / size integer
F     bit-flags integer
B     BOOL (any non-zero is TRUE, as on Win32)
T     timeout in milliseconds (``0xFFFFFFFF`` is INFINITE)
====  =============================================================

The signature list is organised by API family.  Roughly 520 of the
entries are real NT 4.0 kernel32 exports with their real arities; the
trailing *undocumented exports* section stands in for kernel32's
internal/ordinal-only exports (``BaseAttachCompleteThunk`` and friends)
whose signatures a DLL-export scanner cannot know — DTS would have
counted them among the non-injectable functions, and so do we.  The
section is padded so the registry totals exactly 681 exports with
exactly 130 parameter-less entries, matching the paper's machine.
"""

from __future__ import annotations

import enum
from typing import Iterator, Optional


class ParamType(enum.Enum):
    """Declared type of one function parameter."""

    HANDLE = "H"
    HANDLE_OPT = "H?"
    PTR = "P"
    PTR_OPT = "P?"
    CSTR = "S"
    CSTR_OPT = "S?"
    OUTPTR = "O"
    OUTPTR_OPT = "O?"
    INT = "I"
    SIZE = "Z"
    FLAGS = "F"
    BOOL = "B"
    TIMEOUT = "T"

    @property
    def pointer_like(self) -> bool:
        """Whether raw values of this type decode through the address space."""
        return self in _POINTER_TYPES

    @property
    def optional(self) -> bool:
        """Whether a raw zero is a legal value rather than a corruption symptom."""
        return self in _OPTIONAL_TYPES


_POINTER_TYPES = frozenset({
    ParamType.PTR, ParamType.PTR_OPT, ParamType.CSTR, ParamType.CSTR_OPT,
    ParamType.OUTPTR, ParamType.OUTPTR_OPT,
})
_OPTIONAL_TYPES = frozenset({
    ParamType.HANDLE_OPT, ParamType.PTR_OPT, ParamType.CSTR_OPT,
    ParamType.OUTPTR_OPT,
})

_CODE_TO_TYPE = {t.value: t for t in ParamType}


class ParamSpec:
    """One declared parameter: a name and a :class:`ParamType`."""

    __slots__ = ("name", "ptype", "index")

    def __init__(self, name: str, ptype: ParamType, index: int):
        self.name = name
        self.ptype = ptype
        self.index = index

    def __repr__(self) -> str:
        return f"<Param {self.index}:{self.name}:{self.ptype.value}>"


class FunctionSig:
    """A kernel32 export: name plus ordered parameter specs."""

    # ``_dispatch`` is a lazily-filled ``(impl, is_blocking)`` pair the
    # call layer caches after the implementation registry is complete;
    # the slot is deliberately left unset here so first use can detect
    # it with AttributeError.
    __slots__ = ("name", "params", "family", "pointer_flags", "_dispatch")

    def __init__(self, name: str, params: tuple[ParamSpec, ...], family: str):
        self.name = name
        self.params = params
        self.family = family
        # Precomputed per-parameter pointer-likeness: the call path
        # decodes every argument of every intercepted call, and paying
        # an enum property plus a set membership there per argument
        # shows up at load scale.
        self.pointer_flags = tuple(p.ptype.pointer_like for p in params)

    @property
    def param_count(self) -> int:
        return len(self.params)

    @property
    def injectable(self) -> bool:
        """Functions without parameters cannot have parameters corrupted."""
        return bool(self.params)

    def __repr__(self) -> str:
        inner = ", ".join(f"{p.name}:{p.ptype.value}" for p in self.params)
        return f"{self.name}({inner})"


class SignatureError(ValueError):
    """Raised for malformed signature strings or duplicate names."""


def parse_signature(text: str, family: str) -> FunctionSig:
    """Parse one ``Name(param:CODE, ...)`` line."""
    text = text.strip()
    open_paren = text.find("(")
    if open_paren < 0 or not text.endswith(")"):
        raise SignatureError(f"malformed signature: {text!r}")
    name = text[:open_paren].strip()
    if not name.isidentifier():
        raise SignatureError(f"bad function name in {text!r}")
    body = text[open_paren + 1:-1].strip()
    params: list[ParamSpec] = []
    if body:
        for index, piece in enumerate(body.split(",")):
            piece = piece.strip()
            pname, _, code = piece.rpartition(":")
            ptype = _CODE_TO_TYPE.get(code.strip())
            if not pname or ptype is None:
                raise SignatureError(f"bad parameter {piece!r} in {name}")
            params.append(ParamSpec(pname.strip(), ptype, index))
    return FunctionSig(name, tuple(params), family)


# ======================================================================
# The export table, by API family.
# ======================================================================

_FILE_API = """
CreateFileA(lpFileName:S, dwDesiredAccess:F, dwShareMode:F, lpSecurityAttributes:P?, dwCreationDisposition:I, dwFlagsAndAttributes:F, hTemplateFile:H?)
CreateFileW(lpFileName:S, dwDesiredAccess:F, dwShareMode:F, lpSecurityAttributes:P?, dwCreationDisposition:I, dwFlagsAndAttributes:F, hTemplateFile:H?)
ReadFile(hFile:H, lpBuffer:O, nNumberOfBytesToRead:Z, lpNumberOfBytesRead:O?, lpOverlapped:P?)
ReadFileEx(hFile:H, lpBuffer:O, nNumberOfBytesToRead:Z, lpOverlapped:P, lpCompletionRoutine:P?)
WriteFile(hFile:H, lpBuffer:P, nNumberOfBytesToWrite:Z, lpNumberOfBytesWritten:O?, lpOverlapped:P?)
WriteFileEx(hFile:H, lpBuffer:P, nNumberOfBytesToWrite:Z, lpOverlapped:P, lpCompletionRoutine:P?)
CloseHandle(hObject:H)
DeleteFileA(lpFileName:S)
DeleteFileW(lpFileName:S)
CopyFileA(lpExistingFileName:S, lpNewFileName:S, bFailIfExists:B)
CopyFileW(lpExistingFileName:S, lpNewFileName:S, bFailIfExists:B)
MoveFileA(lpExistingFileName:S, lpNewFileName:S)
MoveFileW(lpExistingFileName:S, lpNewFileName:S)
MoveFileExA(lpExistingFileName:S, lpNewFileName:S?, dwFlags:F)
MoveFileExW(lpExistingFileName:S, lpNewFileName:S?, dwFlags:F)
GetFileSize(hFile:H, lpFileSizeHigh:O?)
GetFileType(hFile:H)
GetFileTime(hFile:H, lpCreationTime:O?, lpLastAccessTime:O?, lpLastWriteTime:O?)
SetFileTime(hFile:H, lpCreationTime:P?, lpLastAccessTime:P?, lpLastWriteTime:P?)
SetFilePointer(hFile:H, lDistanceToMove:I, lpDistanceToMoveHigh:O?, dwMoveMethod:I)
SetEndOfFile(hFile:H)
FlushFileBuffers(hFile:H)
LockFile(hFile:H, dwFileOffsetLow:I, dwFileOffsetHigh:I, nNumberOfBytesToLockLow:Z, nNumberOfBytesToLockHigh:Z)
LockFileEx(hFile:H, dwFlags:F, dwReserved:I, nNumberOfBytesToLockLow:Z, nNumberOfBytesToLockHigh:Z, lpOverlapped:P)
UnlockFile(hFile:H, dwFileOffsetLow:I, dwFileOffsetHigh:I, nNumberOfBytesToUnlockLow:Z, nNumberOfBytesToUnlockHigh:Z)
UnlockFileEx(hFile:H, dwReserved:I, nNumberOfBytesToUnlockLow:Z, nNumberOfBytesToUnlockHigh:Z, lpOverlapped:P)
GetFileAttributesA(lpFileName:S)
GetFileAttributesW(lpFileName:S)
SetFileAttributesA(lpFileName:S, dwFileAttributes:F)
SetFileAttributesW(lpFileName:S, dwFileAttributes:F)
GetFileInformationByHandle(hFile:H, lpFileInformation:O)
FindFirstFileA(lpFileName:S, lpFindFileData:O)
FindFirstFileW(lpFileName:S, lpFindFileData:O)
FindNextFileA(hFindFile:H, lpFindFileData:O)
FindNextFileW(hFindFile:H, lpFindFileData:O)
FindClose(hFindFile:H)
SearchPathA(lpPath:S?, lpFileName:S, lpExtension:S?, nBufferLength:Z, lpBuffer:O, lpFilePart:O?)
SearchPathW(lpPath:S?, lpFileName:S, lpExtension:S?, nBufferLength:Z, lpBuffer:O, lpFilePart:O?)
GetFullPathNameA(lpFileName:S, nBufferLength:Z, lpBuffer:O, lpFilePart:O?)
GetFullPathNameW(lpFileName:S, nBufferLength:Z, lpBuffer:O, lpFilePart:O?)
GetShortPathNameA(lpszLongPath:S, lpszShortPath:O, cchBuffer:Z)
GetShortPathNameW(lpszLongPath:S, lpszShortPath:O, cchBuffer:Z)
GetTempPathA(nBufferLength:Z, lpBuffer:O)
GetTempPathW(nBufferLength:Z, lpBuffer:O)
GetTempFileNameA(lpPathName:S, lpPrefixString:S, uUnique:I, lpTempFileName:O)
GetTempFileNameW(lpPathName:S, lpPrefixString:S, uUnique:I, lpTempFileName:O)
CreateDirectoryA(lpPathName:S, lpSecurityAttributes:P?)
CreateDirectoryW(lpPathName:S, lpSecurityAttributes:P?)
CreateDirectoryExA(lpTemplateDirectory:S, lpNewDirectory:S, lpSecurityAttributes:P?)
CreateDirectoryExW(lpTemplateDirectory:S, lpNewDirectory:S, lpSecurityAttributes:P?)
RemoveDirectoryA(lpPathName:S)
RemoveDirectoryW(lpPathName:S)
GetCurrentDirectoryA(nBufferLength:Z, lpBuffer:O)
GetCurrentDirectoryW(nBufferLength:Z, lpBuffer:O)
SetCurrentDirectoryA(lpPathName:S)
SetCurrentDirectoryW(lpPathName:S)
GetDriveTypeA(lpRootPathName:S?)
GetDriveTypeW(lpRootPathName:S?)
GetDiskFreeSpaceA(lpRootPathName:S?, lpSectorsPerCluster:O?, lpBytesPerSector:O?, lpNumberOfFreeClusters:O?, lpTotalNumberOfClusters:O?)
GetDiskFreeSpaceW(lpRootPathName:S?, lpSectorsPerCluster:O?, lpBytesPerSector:O?, lpNumberOfFreeClusters:O?, lpTotalNumberOfClusters:O?)
GetLogicalDriveStringsA(nBufferLength:Z, lpBuffer:O)
GetLogicalDriveStringsW(nBufferLength:Z, lpBuffer:O)
GetVolumeInformationA(lpRootPathName:S?, lpVolumeNameBuffer:O?, nVolumeNameSize:Z, lpVolumeSerialNumber:O?, lpMaximumComponentLength:O?, lpFileSystemFlags:O?, lpFileSystemNameBuffer:O?, nFileSystemNameSize:Z)
GetVolumeInformationW(lpRootPathName:S?, lpVolumeNameBuffer:O?, nVolumeNameSize:Z, lpVolumeSerialNumber:O?, lpMaximumComponentLength:O?, lpFileSystemFlags:O?, lpFileSystemNameBuffer:O?, nFileSystemNameSize:Z)
SetVolumeLabelA(lpRootPathName:S?, lpVolumeName:S?)
SetVolumeLabelW(lpRootPathName:S?, lpVolumeName:S?)
QueryDosDeviceA(lpDeviceName:S?, lpTargetPath:O, ucchMax:Z)
QueryDosDeviceW(lpDeviceName:S?, lpTargetPath:O, ucchMax:Z)
DefineDosDeviceA(dwFlags:F, lpDeviceName:S, lpTargetPath:S?)
DefineDosDeviceW(dwFlags:F, lpDeviceName:S, lpTargetPath:S?)
DeviceIoControl(hDevice:H, dwIoControlCode:I, lpInBuffer:P?, nInBufferSize:Z, lpOutBuffer:O?, nOutBufferSize:Z, lpBytesReturned:O, lpOverlapped:P?)
OpenFile(lpFileName:S, lpReOpenBuff:O, uStyle:F)
CompareFileTime(lpFileTime1:P, lpFileTime2:P)
FileTimeToLocalFileTime(lpFileTime:P, lpLocalFileTime:O)
LocalFileTimeToFileTime(lpLocalFileTime:P, lpFileTime:O)
FileTimeToSystemTime(lpFileTime:P, lpSystemTime:O)
SystemTimeToFileTime(lpSystemTime:P, lpFileTime:O)
FileTimeToDosDateTime(lpFileTime:P, lpFatDate:O, lpFatTime:O)
DosDateTimeToFileTime(wFatDate:I, wFatTime:I, lpFileTime:O)
GetSystemTimeAsFileTime(lpSystemTimeAsFileTime:O)
GetBinaryTypeA(lpApplicationName:S, lpBinaryType:O)
GetBinaryTypeW(lpApplicationName:S, lpBinaryType:O)
GetOverlappedResult(hFile:H, lpOverlapped:P, lpNumberOfBytesTransferred:O, bWait:B)
CancelIo(hFile:H)
CreateIoCompletionPort(FileHandle:H, ExistingCompletionPort:H?, CompletionKey:I, NumberOfConcurrentThreads:I)
GetQueuedCompletionStatus(CompletionPort:H, lpNumberOfBytes:O, lpCompletionKey:O, lpOverlapped:O, dwMilliseconds:T)
PostQueuedCompletionStatus(CompletionPort:H, dwNumberOfBytesTransferred:Z, dwCompletionKey:I, lpOverlapped:P?)
_lopen(lpPathName:S, iReadWrite:F)
_lclose(hFile:H)
_lread(hFile:H, lpBuffer:O, uBytes:Z)
_lwrite(hFile:H, lpBuffer:P, uBytes:Z)
_lcreat(lpPathName:S, iAttribute:F)
_llseek(hFile:H, lOffset:I, iOrigin:I)
_hread(hFile:H, lpBuffer:O, lBytes:Z)
_hwrite(hFile:H, lpBuffer:P, lBytes:Z)
"""

_PROCESS_API = """
CreateProcessA(lpApplicationName:S?, lpCommandLine:S?, lpProcessAttributes:P?, lpThreadAttributes:P?, bInheritHandles:B, dwCreationFlags:F, lpEnvironment:P?, lpCurrentDirectory:S?, lpStartupInfo:P, lpProcessInformation:O)
CreateProcessW(lpApplicationName:S?, lpCommandLine:S?, lpProcessAttributes:P?, lpThreadAttributes:P?, bInheritHandles:B, dwCreationFlags:F, lpEnvironment:P?, lpCurrentDirectory:S?, lpStartupInfo:P, lpProcessInformation:O)
ExitProcess(uExitCode:I)
TerminateProcess(hProcess:H, uExitCode:I)
GetExitCodeProcess(hProcess:H, lpExitCode:O)
OpenProcess(dwDesiredAccess:F, bInheritHandle:B, dwProcessId:I)
CreateThread(lpThreadAttributes:P?, dwStackSize:Z, lpStartAddress:P, lpParameter:P?, dwCreationFlags:F, lpThreadId:O?)
ExitThread(dwExitCode:I)
TerminateThread(hThread:H, dwExitCode:I)
GetExitCodeThread(hThread:H, lpExitCode:O)
SuspendThread(hThread:H)
ResumeThread(hThread:H)
SetThreadPriority(hThread:H, nPriority:I)
GetThreadPriority(hThread:H)
GetThreadTimes(hThread:H, lpCreationTime:O, lpExitTime:O, lpKernelTime:O, lpUserTime:O)
GetProcessTimes(hProcess:H, lpCreationTime:O, lpExitTime:O, lpKernelTime:O, lpUserTime:O)
GetPriorityClass(hProcess:H)
SetPriorityClass(hProcess:H, dwPriorityClass:F)
GetProcessWorkingSetSize(hProcess:H, lpMinimumWorkingSetSize:O, lpMaximumWorkingSetSize:O)
SetProcessWorkingSetSize(hProcess:H, dwMinimumWorkingSetSize:Z, dwMaximumWorkingSetSize:Z)
GetStartupInfoA(lpStartupInfo:O)
GetStartupInfoW(lpStartupInfo:O)
CreateRemoteThread(hProcess:H, lpThreadAttributes:P?, dwStackSize:Z, lpStartAddress:P, lpParameter:P?, dwCreationFlags:F, lpThreadId:O?)
GetThreadContext(hThread:H, lpContext:O)
SetThreadContext(hThread:H, lpContext:P)
GetProcessAffinityMask(hProcess:H, lpProcessAffinityMask:O, lpSystemAffinityMask:O)
SetThreadAffinityMask(hThread:H, dwThreadAffinityMask:F)
GetProcessShutdownParameters(lpdwLevel:O, lpdwFlags:O)
SetProcessShutdownParameters(dwLevel:I, dwFlags:F)
GetProcessVersion(ProcessId:I)
GetProcessHeaps(NumberOfHeaps:Z, ProcessHeaps:O)
Sleep(dwMilliseconds:T)
SleepEx(dwMilliseconds:T, bAlertable:B)
GetThreadSelectorEntry(hThread:H, dwSelector:I, lpSelectorEntry:O)
SetThreadLocale(Locale:I)
TlsFree(dwTlsIndex:I)
TlsGetValue(dwTlsIndex:I)
TlsSetValue(dwTlsIndex:I, lpTlsValue:P?)
WinExec(lpCmdLine:S, uCmdShow:I)
LoadModule(lpModuleName:S, lpParameterBlock:P)
OpenEventA(dwDesiredAccess:F, bInheritHandle:B, lpName:S)
OpenEventW(dwDesiredAccess:F, bInheritHandle:B, lpName:S)
DuplicateHandle(hSourceProcessHandle:H, hSourceHandle:H, hTargetProcessHandle:H, lpTargetHandle:O, dwDesiredAccess:F, bInheritHandle:B, dwOptions:F)
GetHandleInformation(hObject:H, lpdwFlags:O)
SetHandleInformation(hObject:H, dwMask:F, dwFlags:F)
SetHandleCount(uNumber:I)
ConvertThreadToFiber(lpParameter:P?)
CreateFiber(dwStackSize:Z, lpStartAddress:P, lpParameter:P?)
DeleteFiber(lpFiber:P)
SwitchToFiber(lpFiber:P)
"""

_SYNC_API = """
CreateEventA(lpEventAttributes:P?, bManualReset:B, bInitialState:B, lpName:S?)
CreateEventW(lpEventAttributes:P?, bManualReset:B, bInitialState:B, lpName:S?)
SetEvent(hEvent:H)
ResetEvent(hEvent:H)
PulseEvent(hEvent:H)
CreateMutexA(lpMutexAttributes:P?, bInitialOwner:B, lpName:S?)
CreateMutexW(lpMutexAttributes:P?, bInitialOwner:B, lpName:S?)
OpenMutexA(dwDesiredAccess:F, bInheritHandle:B, lpName:S)
OpenMutexW(dwDesiredAccess:F, bInheritHandle:B, lpName:S)
ReleaseMutex(hMutex:H)
CreateSemaphoreA(lpSemaphoreAttributes:P?, lInitialCount:I, lMaximumCount:I, lpName:S?)
CreateSemaphoreW(lpSemaphoreAttributes:P?, lInitialCount:I, lMaximumCount:I, lpName:S?)
OpenSemaphoreA(dwDesiredAccess:F, bInheritHandle:B, lpName:S)
OpenSemaphoreW(dwDesiredAccess:F, bInheritHandle:B, lpName:S)
ReleaseSemaphore(hSemaphore:H, lReleaseCount:I, lpPreviousCount:O?)
WaitForSingleObject(hHandle:H, dwMilliseconds:T)
WaitForSingleObjectEx(hHandle:H, dwMilliseconds:T, bAlertable:B)
WaitForMultipleObjects(nCount:Z, lpHandles:P, bWaitAll:B, dwMilliseconds:T)
WaitForMultipleObjectsEx(nCount:Z, lpHandles:P, bWaitAll:B, dwMilliseconds:T, bAlertable:B)
SignalObjectAndWait(hObjectToSignal:H, hObjectToWaitOn:H, dwMilliseconds:T, bAlertable:B)
InitializeCriticalSection(lpCriticalSection:O)
EnterCriticalSection(lpCriticalSection:P)
LeaveCriticalSection(lpCriticalSection:P)
DeleteCriticalSection(lpCriticalSection:P)
TryEnterCriticalSection(lpCriticalSection:P)
InterlockedIncrement(lpAddend:P)
InterlockedDecrement(lpAddend:P)
InterlockedExchange(Target:P, Value:I)
InterlockedExchangeAdd(Addend:P, Value:I)
InterlockedCompareExchange(Destination:P, Exchange:I, Comperand:I)
CreateWaitableTimerA(lpTimerAttributes:P?, bManualReset:B, lpTimerName:S?)
CreateWaitableTimerW(lpTimerAttributes:P?, bManualReset:B, lpTimerName:S?)
OpenWaitableTimerA(dwDesiredAccess:F, bInheritHandle:B, lpTimerName:S)
OpenWaitableTimerW(dwDesiredAccess:F, bInheritHandle:B, lpTimerName:S)
SetWaitableTimer(hTimer:H, pDueTime:P, lPeriod:I, pfnCompletionRoutine:P?, lpArgToCompletionRoutine:P?, fResume:B)
CancelWaitableTimer(hTimer:H)
WaitNamedPipeA(lpNamedPipeName:S, nTimeOut:T)
WaitNamedPipeW(lpNamedPipeName:S, nTimeOut:T)
"""

_MEMORY_API = """
HeapCreate(flOptions:F, dwInitialSize:Z, dwMaximumSize:Z)
HeapDestroy(hHeap:H)
HeapAlloc(hHeap:H, dwFlags:F, dwBytes:Z)
HeapReAlloc(hHeap:H, dwFlags:F, lpMem:P, dwBytes:Z)
HeapFree(hHeap:H, dwFlags:F, lpMem:P)
HeapSize(hHeap:H, dwFlags:F, lpMem:P)
HeapValidate(hHeap:H, dwFlags:F, lpMem:P?)
HeapCompact(hHeap:H, dwFlags:F)
HeapLock(hHeap:H)
HeapUnlock(hHeap:H)
HeapWalk(hHeap:H, lpEntry:O)
GlobalAlloc(uFlags:F, dwBytes:Z)
GlobalReAlloc(hMem:P, dwBytes:Z, uFlags:F)
GlobalFree(hMem:P)
GlobalLock(hMem:P)
GlobalUnlock(hMem:P)
GlobalSize(hMem:P)
GlobalFlags(hMem:P)
GlobalHandle(pMem:P)
GlobalMemoryStatus(lpBuffer:O)
LocalAlloc(uFlags:F, uBytes:Z)
LocalReAlloc(hMem:P, uBytes:Z, uFlags:F)
LocalFree(hMem:P)
LocalLock(hMem:P)
LocalUnlock(hMem:P)
LocalSize(hMem:P)
LocalFlags(hMem:P)
LocalHandle(pMem:P)
VirtualAlloc(lpAddress:P?, dwSize:Z, flAllocationType:F, flProtect:F)
VirtualAllocEx(hProcess:H, lpAddress:P?, dwSize:Z, flAllocationType:F, flProtect:F)
VirtualFree(lpAddress:P, dwSize:Z, dwFreeType:F)
VirtualFreeEx(hProcess:H, lpAddress:P, dwSize:Z, dwFreeType:F)
VirtualProtect(lpAddress:P, dwSize:Z, flNewProtect:F, lpflOldProtect:O)
VirtualProtectEx(hProcess:H, lpAddress:P, dwSize:Z, flNewProtect:F, lpflOldProtect:O)
VirtualQuery(lpAddress:P?, lpBuffer:O, dwLength:Z)
VirtualQueryEx(hProcess:H, lpAddress:P?, lpBuffer:O, dwLength:Z)
VirtualLock(lpAddress:P, dwSize:Z)
VirtualUnlock(lpAddress:P, dwSize:Z)
IsBadReadPtr(lp:P?, ucb:Z)
IsBadWritePtr(lp:P?, ucb:Z)
IsBadCodePtr(lpfn:P?)
IsBadStringPtrA(lpsz:S?, ucchMax:Z)
IsBadStringPtrW(lpsz:S?, ucchMax:Z)
IsBadHugeReadPtr(lp:P?, ucb:Z)
IsBadHugeWritePtr(lp:P?, ucb:Z)
CreateFileMappingA(hFile:H?, lpFileMappingAttributes:P?, flProtect:F, dwMaximumSizeHigh:Z, dwMaximumSizeLow:Z, lpName:S?)
CreateFileMappingW(hFile:H?, lpFileMappingAttributes:P?, flProtect:F, dwMaximumSizeHigh:Z, dwMaximumSizeLow:Z, lpName:S?)
OpenFileMappingA(dwDesiredAccess:F, bInheritHandle:B, lpName:S)
OpenFileMappingW(dwDesiredAccess:F, bInheritHandle:B, lpName:S)
MapViewOfFile(hFileMappingObject:H, dwDesiredAccess:F, dwFileOffsetHigh:I, dwFileOffsetLow:I, dwNumberOfBytesToMap:Z)
MapViewOfFileEx(hFileMappingObject:H, dwDesiredAccess:F, dwFileOffsetHigh:I, dwFileOffsetLow:I, dwNumberOfBytesToMap:Z, lpBaseAddress:P?)
UnmapViewOfFile(lpBaseAddress:P)
FlushViewOfFile(lpBaseAddress:P, dwNumberOfBytesToFlush:Z)
"""

_MODULE_API = """
LoadLibraryA(lpLibFileName:S)
LoadLibraryW(lpLibFileName:S)
LoadLibraryExA(lpLibFileName:S, hFile:H?, dwFlags:F)
LoadLibraryExW(lpLibFileName:S, hFile:H?, dwFlags:F)
FreeLibrary(hLibModule:H)
FreeLibraryAndExitThread(hLibModule:H, dwExitCode:I)
GetModuleHandleA(lpModuleName:S?)
GetModuleHandleW(lpModuleName:S?)
GetModuleFileNameA(hModule:H?, lpFilename:O, nSize:Z)
GetModuleFileNameW(hModule:H?, lpFilename:O, nSize:Z)
GetProcAddress(hModule:H, lpProcName:S)
DisableThreadLibraryCalls(hLibModule:H)
FindResourceA(hModule:H?, lpName:S, lpType:S)
FindResourceW(hModule:H?, lpName:S, lpType:S)
FindResourceExA(hModule:H?, lpType:S, lpName:S, wLanguage:I)
FindResourceExW(hModule:H?, lpType:S, lpName:S, wLanguage:I)
LoadResource(hModule:H?, hResInfo:H)
LockResource(hResData:H)
SizeofResource(hModule:H?, hResInfo:H)
FreeResource(hResData:H)
EnumResourceTypesA(hModule:H?, lpEnumFunc:P, lParam:I)
EnumResourceTypesW(hModule:H?, lpEnumFunc:P, lParam:I)
EnumResourceNamesA(hModule:H?, lpType:S, lpEnumFunc:P, lParam:I)
EnumResourceNamesW(hModule:H?, lpType:S, lpEnumFunc:P, lParam:I)
EnumResourceLanguagesA(hModule:H?, lpType:S, lpName:S, lpEnumFunc:P, lParam:I)
EnumResourceLanguagesW(hModule:H?, lpType:S, lpName:S, lpEnumFunc:P, lParam:I)
BeginUpdateResourceA(pFileName:S, bDeleteExistingResources:B)
BeginUpdateResourceW(pFileName:S, bDeleteExistingResources:B)
EndUpdateResourceA(hUpdate:H, fDiscard:B)
EndUpdateResourceW(hUpdate:H, fDiscard:B)
UpdateResourceA(hUpdate:H, lpType:S, lpName:S, wLanguage:I, lpData:P?, cbData:Z)
UpdateResourceW(hUpdate:H, lpType:S, lpName:S, wLanguage:I, lpData:P?, cbData:Z)
"""

_CONSOLE_API = """
SetConsoleCP(wCodePageID:I)
SetConsoleOutputCP(wCodePageID:I)
GetConsoleMode(hConsoleHandle:H, lpMode:O)
SetConsoleMode(hConsoleHandle:H, dwMode:F)
GetConsoleTitleA(lpConsoleTitle:O, nSize:Z)
GetConsoleTitleW(lpConsoleTitle:O, nSize:Z)
SetConsoleTitleA(lpConsoleTitle:S)
SetConsoleTitleW(lpConsoleTitle:S)
ReadConsoleA(hConsoleInput:H, lpBuffer:O, nNumberOfCharsToRead:Z, lpNumberOfCharsRead:O, lpReserved:P?)
ReadConsoleW(hConsoleInput:H, lpBuffer:O, nNumberOfCharsToRead:Z, lpNumberOfCharsRead:O, lpReserved:P?)
WriteConsoleA(hConsoleOutput:H, lpBuffer:P, nNumberOfCharsToWrite:Z, lpNumberOfCharsWritten:O?, lpReserved:P?)
WriteConsoleW(hConsoleOutput:H, lpBuffer:P, nNumberOfCharsToWrite:Z, lpNumberOfCharsWritten:O?, lpReserved:P?)
ReadConsoleInputA(hConsoleInput:H, lpBuffer:O, nLength:Z, lpNumberOfEventsRead:O)
ReadConsoleInputW(hConsoleInput:H, lpBuffer:O, nLength:Z, lpNumberOfEventsRead:O)
PeekConsoleInputA(hConsoleInput:H, lpBuffer:O, nLength:Z, lpNumberOfEventsRead:O)
PeekConsoleInputW(hConsoleInput:H, lpBuffer:O, nLength:Z, lpNumberOfEventsRead:O)
WriteConsoleInputA(hConsoleInput:H, lpBuffer:P, nLength:Z, lpNumberOfEventsWritten:O)
WriteConsoleInputW(hConsoleInput:H, lpBuffer:P, nLength:Z, lpNumberOfEventsWritten:O)
GetConsoleScreenBufferInfo(hConsoleOutput:H, lpConsoleScreenBufferInfo:O)
SetConsoleScreenBufferSize(hConsoleOutput:H, dwSize:I)
SetConsoleCursorPosition(hConsoleOutput:H, dwCursorPosition:I)
GetConsoleCursorInfo(hConsoleOutput:H, lpConsoleCursorInfo:O)
SetConsoleCursorInfo(hConsoleOutput:H, lpConsoleCursorInfo:P)
FillConsoleOutputCharacterA(hConsoleOutput:H, cCharacter:I, nLength:Z, dwWriteCoord:I, lpNumberOfCharsWritten:O)
FillConsoleOutputCharacterW(hConsoleOutput:H, cCharacter:I, nLength:Z, dwWriteCoord:I, lpNumberOfCharsWritten:O)
FillConsoleOutputAttribute(hConsoleOutput:H, wAttribute:I, nLength:Z, dwWriteCoord:I, lpNumberOfAttrsWritten:O)
ScrollConsoleScreenBufferA(hConsoleOutput:H, lpScrollRectangle:P, lpClipRectangle:P?, dwDestinationOrigin:I, lpFill:P)
ScrollConsoleScreenBufferW(hConsoleOutput:H, lpScrollRectangle:P, lpClipRectangle:P?, dwDestinationOrigin:I, lpFill:P)
SetConsoleTextAttribute(hConsoleOutput:H, wAttributes:F)
SetConsoleCtrlHandler(HandlerRoutine:P?, Add:B)
GenerateConsoleCtrlEvent(dwCtrlEvent:I, dwProcessGroupId:I)
GetNumberOfConsoleInputEvents(hConsoleInput:H, lpNumberOfEvents:O)
GetNumberOfConsoleMouseButtons(lpNumberOfMouseButtons:O)
FlushConsoleInputBuffer(hConsoleInput:H)
GetLargestConsoleWindowSize(hConsoleOutput:H)
SetConsoleActiveScreenBuffer(hConsoleOutput:H)
CreateConsoleScreenBuffer(dwDesiredAccess:F, dwShareMode:F, lpSecurityAttributes:P?, dwFlags:F, lpScreenBufferData:P?)
SetConsoleWindowInfo(hConsoleOutput:H, bAbsolute:B, lpConsoleWindow:P)
WriteConsoleOutputA(hConsoleOutput:H, lpBuffer:P, dwBufferSize:I, dwBufferCoord:I, lpWriteRegion:P)
WriteConsoleOutputW(hConsoleOutput:H, lpBuffer:P, dwBufferSize:I, dwBufferCoord:I, lpWriteRegion:P)
ReadConsoleOutputA(hConsoleOutput:H, lpBuffer:O, dwBufferSize:I, dwBufferCoord:I, lpReadRegion:P)
ReadConsoleOutputW(hConsoleOutput:H, lpBuffer:O, dwBufferSize:I, dwBufferCoord:I, lpReadRegion:P)
WriteConsoleOutputCharacterA(hConsoleOutput:H, lpCharacter:P, nLength:Z, dwWriteCoord:I, lpNumberOfCharsWritten:O)
WriteConsoleOutputCharacterW(hConsoleOutput:H, lpCharacter:P, nLength:Z, dwWriteCoord:I, lpNumberOfCharsWritten:O)
WriteConsoleOutputAttribute(hConsoleOutput:H, lpAttribute:P, nLength:Z, dwWriteCoord:I, lpNumberOfAttrsWritten:O)
ReadConsoleOutputCharacterA(hConsoleOutput:H, lpCharacter:O, nLength:Z, dwReadCoord:I, lpNumberOfCharsRead:O)
ReadConsoleOutputCharacterW(hConsoleOutput:H, lpCharacter:O, nLength:Z, dwReadCoord:I, lpNumberOfCharsRead:O)
ReadConsoleOutputAttribute(hConsoleOutput:H, lpAttribute:O, nLength:Z, dwReadCoord:I, lpNumberOfAttrsRead:O)
SetStdHandle(nStdHandle:I, hHandle:H)
GetStdHandle(nStdHandle:I)
"""

_STRING_API = """
lstrcatA(lpString1:P, lpString2:S)
lstrcatW(lpString1:P, lpString2:S)
lstrcmpA(lpString1:S, lpString2:S)
lstrcmpW(lpString1:S, lpString2:S)
lstrcmpiA(lpString1:S, lpString2:S)
lstrcmpiW(lpString1:S, lpString2:S)
lstrcpyA(lpString1:O, lpString2:S)
lstrcpyW(lpString1:O, lpString2:S)
lstrcpynA(lpString1:O, lpString2:S, iMaxLength:Z)
lstrcpynW(lpString1:O, lpString2:S, iMaxLength:Z)
lstrlenA(lpString:S?)
lstrlenW(lpString:S?)
CompareStringA(Locale:I, dwCmpFlags:F, lpString1:S, cchCount1:Z, lpString2:S, cchCount2:Z)
CompareStringW(Locale:I, dwCmpFlags:F, lpString1:S, cchCount1:Z, lpString2:S, cchCount2:Z)
LCMapStringA(Locale:I, dwMapFlags:F, lpSrcStr:S, cchSrc:Z, lpDestStr:O?, cchDest:Z)
LCMapStringW(Locale:I, dwMapFlags:F, lpSrcStr:S, cchSrc:Z, lpDestStr:O?, cchDest:Z)
GetStringTypeA(Locale:I, dwInfoType:I, lpSrcStr:S, cchSrc:Z, lpCharType:O)
GetStringTypeW(dwInfoType:I, lpSrcStr:S, cchSrc:Z, lpCharType:O)
GetStringTypeExA(Locale:I, dwInfoType:I, lpSrcStr:S, cchSrc:Z, lpCharType:O)
GetStringTypeExW(Locale:I, dwInfoType:I, lpSrcStr:S, cchSrc:Z, lpCharType:O)
FoldStringA(dwMapFlags:F, lpSrcStr:S, cchSrc:Z, lpDestStr:O?, cchDest:Z)
FoldStringW(dwMapFlags:F, lpSrcStr:S, cchSrc:Z, lpDestStr:O?, cchDest:Z)
MultiByteToWideChar(CodePage:I, dwFlags:F, lpMultiByteStr:S, cbMultiByte:Z, lpWideCharStr:O?, cchWideChar:Z)
WideCharToMultiByte(CodePage:I, dwFlags:F, lpWideCharStr:S, cchWideChar:Z, lpMultiByteStr:O?, cbMultiByte:Z, lpDefaultChar:S?, lpUsedDefaultChar:O?)
IsDBCSLeadByte(TestChar:I)
IsDBCSLeadByteEx(CodePage:I, TestChar:I)
IsValidCodePage(CodePage:I)
GetCPInfo(CodePage:I, lpCPInfo:O)
GetLocaleInfoA(Locale:I, LCType:I, lpLCData:O?, cchData:Z)
GetLocaleInfoW(Locale:I, LCType:I, lpLCData:O?, cchData:Z)
SetLocaleInfoA(Locale:I, LCType:I, lpLCData:S)
SetLocaleInfoW(Locale:I, LCType:I, lpLCData:S)
IsValidLocale(Locale:I, dwFlags:F)
ConvertDefaultLocale(Locale:I)
EnumSystemLocalesA(lpLocaleEnumProc:P, dwFlags:F)
EnumSystemLocalesW(lpLocaleEnumProc:P, dwFlags:F)
EnumSystemCodePagesA(lpCodePageEnumProc:P, dwFlags:F)
EnumSystemCodePagesW(lpCodePageEnumProc:P, dwFlags:F)
EnumCalendarInfoA(lpCalInfoEnumProc:P, Locale:I, Calendar:I, CalType:I)
EnumCalendarInfoW(lpCalInfoEnumProc:P, Locale:I, Calendar:I, CalType:I)
EnumTimeFormatsA(lpTimeFmtEnumProc:P, Locale:I, dwFlags:F)
EnumTimeFormatsW(lpTimeFmtEnumProc:P, Locale:I, dwFlags:F)
EnumDateFormatsA(lpDateFmtEnumProc:P, Locale:I, dwFlags:F)
EnumDateFormatsW(lpDateFmtEnumProc:P, Locale:I, dwFlags:F)
GetDateFormatA(Locale:I, dwFlags:F, lpDate:P?, lpFormat:S?, lpDateStr:O?, cchDate:Z)
GetDateFormatW(Locale:I, dwFlags:F, lpDate:P?, lpFormat:S?, lpDateStr:O?, cchDate:Z)
GetTimeFormatA(Locale:I, dwFlags:F, lpTime:P?, lpFormat:S?, lpTimeStr:O?, cchTime:Z)
GetTimeFormatW(Locale:I, dwFlags:F, lpTime:P?, lpFormat:S?, lpTimeStr:O?, cchTime:Z)
GetNumberFormatA(Locale:I, dwFlags:F, lpValue:S, lpFormat:P?, lpNumberStr:O?, cchNumber:Z)
GetNumberFormatW(Locale:I, dwFlags:F, lpValue:S, lpFormat:P?, lpNumberStr:O?, cchNumber:Z)
GetCurrencyFormatA(Locale:I, dwFlags:F, lpValue:S, lpFormat:P?, lpCurrencyStr:O?, cchCurrency:Z)
GetCurrencyFormatW(Locale:I, dwFlags:F, lpValue:S, lpFormat:P?, lpCurrencyStr:O?, cchCurrency:Z)
"""

_ENVIRONMENT_API = """
GetEnvironmentVariableA(lpName:S, lpBuffer:O?, nSize:Z)
GetEnvironmentVariableW(lpName:S, lpBuffer:O?, nSize:Z)
SetEnvironmentVariableA(lpName:S, lpValue:S?)
SetEnvironmentVariableW(lpName:S, lpValue:S?)
FreeEnvironmentStringsA(lpszEnvironmentBlock:P)
FreeEnvironmentStringsW(lpszEnvironmentBlock:P)
ExpandEnvironmentStringsA(lpSrc:S, lpDst:O?, nSize:Z)
ExpandEnvironmentStringsW(lpSrc:S, lpDst:O?, nSize:Z)
GetComputerNameA(lpBuffer:O, nSize:P)
GetComputerNameW(lpBuffer:O, nSize:P)
SetComputerNameA(lpComputerName:S)
SetComputerNameW(lpComputerName:S)
GetSystemDirectoryA(lpBuffer:O, uSize:Z)
GetSystemDirectoryW(lpBuffer:O, uSize:Z)
GetWindowsDirectoryA(lpBuffer:O, uSize:Z)
GetWindowsDirectoryW(lpBuffer:O, uSize:Z)
GetSystemInfo(lpSystemInfo:O)
GetVersionExA(lpVersionInformation:O)
GetVersionExW(lpVersionInformation:O)
"""

_TIME_API = """
GetSystemTime(lpSystemTime:O)
SetSystemTime(lpSystemTime:P)
GetLocalTime(lpSystemTime:O)
SetLocalTime(lpSystemTime:P)
GetTimeZoneInformation(lpTimeZoneInformation:O)
SetTimeZoneInformation(lpTimeZoneInformation:P)
QueryPerformanceCounter(lpPerformanceCount:O)
QueryPerformanceFrequency(lpFrequency:O)
GetSystemTimeAdjustment(lpTimeAdjustment:O, lpTimeIncrement:O, lpTimeAdjustmentDisabled:O)
SetSystemTimeAdjustment(dwTimeAdjustment:I, bTimeAdjustmentDisabled:B)
"""

_PIPE_COMM_API = """
CreatePipe(hReadPipe:O, hWritePipe:O, lpPipeAttributes:P?, nSize:Z)
CreateNamedPipeA(lpName:S, dwOpenMode:F, dwPipeMode:F, nMaxInstances:I, nOutBufferSize:Z, nInBufferSize:Z, nDefaultTimeOut:T, lpSecurityAttributes:P?)
CreateNamedPipeW(lpName:S, dwOpenMode:F, dwPipeMode:F, nMaxInstances:I, nOutBufferSize:Z, nInBufferSize:Z, nDefaultTimeOut:T, lpSecurityAttributes:P?)
ConnectNamedPipe(hNamedPipe:H, lpOverlapped:P?)
DisconnectNamedPipe(hNamedPipe:H)
PeekNamedPipe(hNamedPipe:H, lpBuffer:O?, nBufferSize:Z, lpBytesRead:O?, lpTotalBytesAvail:O?, lpBytesLeftThisMessage:O?)
TransactNamedPipe(hNamedPipe:H, lpInBuffer:P, nInBufferSize:Z, lpOutBuffer:O, nOutBufferSize:Z, lpBytesRead:O, lpOverlapped:P?)
CallNamedPipeA(lpNamedPipeName:S, lpInBuffer:P, nInBufferSize:Z, lpOutBuffer:O, nOutBufferSize:Z, lpBytesRead:O, nTimeOut:T)
CallNamedPipeW(lpNamedPipeName:S, lpInBuffer:P, nInBufferSize:Z, lpOutBuffer:O, nOutBufferSize:Z, lpBytesRead:O, nTimeOut:T)
GetNamedPipeHandleStateA(hNamedPipe:H, lpState:O?, lpCurInstances:O?, lpMaxCollectionCount:O?, lpCollectDataTimeout:O?, lpUserName:O?, nMaxUserNameSize:Z)
GetNamedPipeHandleStateW(hNamedPipe:H, lpState:O?, lpCurInstances:O?, lpMaxCollectionCount:O?, lpCollectDataTimeout:O?, lpUserName:O?, nMaxUserNameSize:Z)
SetNamedPipeHandleState(hNamedPipe:H, lpMode:P?, lpMaxCollectionCount:P?, lpCollectDataTimeout:P?)
GetNamedPipeInfo(hNamedPipe:H, lpFlags:O?, lpOutBufferSize:O?, lpInBufferSize:O?, lpMaxInstances:O?)
CreateMailslotA(lpName:S, nMaxMessageSize:Z, lReadTimeout:T, lpSecurityAttributes:P?)
CreateMailslotW(lpName:S, nMaxMessageSize:Z, lReadTimeout:T, lpSecurityAttributes:P?)
GetMailslotInfo(hMailslot:H, lpMaxMessageSize:O?, lpNextSize:O?, lpMessageCount:O?, lpReadTimeout:O?)
SetMailslotInfo(hMailslot:H, lReadTimeout:T)
BuildCommDCBA(lpDef:S, lpDCB:O)
BuildCommDCBW(lpDef:S, lpDCB:O)
BuildCommDCBAndTimeoutsA(lpDef:S, lpDCB:O, lpCommTimeouts:O)
BuildCommDCBAndTimeoutsW(lpDef:S, lpDCB:O, lpCommTimeouts:O)
ClearCommBreak(hFile:H)
ClearCommError(hFile:H, lpErrors:O?, lpStat:O?)
EscapeCommFunction(hFile:H, dwFunc:I)
GetCommConfig(hCommDev:H, lpCC:O, lpdwSize:P)
GetCommMask(hFile:H, lpEvtMask:O)
GetCommModemStatus(hFile:H, lpModemStat:O)
GetCommProperties(hFile:H, lpCommProp:O)
GetCommState(hFile:H, lpDCB:O)
GetCommTimeouts(hFile:H, lpCommTimeouts:O)
PurgeComm(hFile:H, dwFlags:F)
SetCommBreak(hFile:H)
SetCommConfig(hCommDev:H, lpCC:P, dwSize:Z)
SetCommMask(hFile:H, dwEvtMask:F)
SetCommState(hFile:H, lpDCB:P)
SetCommTimeouts(hFile:H, lpCommTimeouts:P)
SetupComm(hFile:H, dwInQueue:Z, dwOutQueue:Z)
TransmitCommChar(hFile:H, cChar:I)
WaitCommEvent(hFile:H, lpEvtMask:O, lpOverlapped:P?)
CommConfigDialogA(lpszName:S, hWnd:H?, lpCC:P)
CommConfigDialogW(lpszName:S, hWnd:H?, lpCC:P)
GetDefaultCommConfigA(lpszName:S, lpCC:O, lpdwSize:P)
GetDefaultCommConfigW(lpszName:S, lpCC:O, lpdwSize:P)
SetDefaultCommConfigA(lpszName:S, lpCC:P, dwSize:Z)
SetDefaultCommConfigW(lpszName:S, lpCC:P, dwSize:Z)
"""

_ERROR_DEBUG_API = """
SetLastError(dwErrCode:I)
SetErrorMode(uMode:F)
Beep(dwFreq:I, dwDuration:I)
FatalAppExitA(uAction:I, lpMessageText:S)
FatalAppExitW(uAction:I, lpMessageText:S)
FatalExit(ExitCode:I)
RaiseException(dwExceptionCode:I, dwExceptionFlags:F, nNumberOfArguments:Z, lpArguments:P?)
UnhandledExceptionFilter(ExceptionInfo:P)
SetUnhandledExceptionFilter(lpTopLevelExceptionFilter:P?)
OutputDebugStringA(lpOutputString:S)
OutputDebugStringW(lpOutputString:S)
ContinueDebugEvent(dwProcessId:I, dwThreadId:I, dwContinueStatus:I)
DebugActiveProcess(dwProcessId:I)
WaitForDebugEvent(lpDebugEvent:O, dwMilliseconds:T)
ReadProcessMemory(hProcess:H, lpBaseAddress:P, lpBuffer:O, nSize:Z, lpNumberOfBytesRead:O?)
WriteProcessMemory(hProcess:H, lpBaseAddress:P, lpBuffer:P, nSize:Z, lpNumberOfBytesWritten:O?)
FlushInstructionCache(hProcess:H, lpBaseAddress:P?, dwSize:Z)
FormatMessageA(dwFlags:F, lpSource:P?, dwMessageId:I, dwLanguageId:I, lpBuffer:O, nSize:Z, Arguments:P?)
FormatMessageW(dwFlags:F, lpSource:P?, dwMessageId:I, dwLanguageId:I, lpBuffer:O, nSize:Z, Arguments:P?)
GetSystemPowerStatus(lpSystemPowerStatus:O)
SetSystemPowerState(fSuspend:B, fForce:B)
MulDiv(nNumber:I, nNumerator:I, nDenominator:I)
"""

_TAPE_API = """
CreateTapePartition(hDevice:H, dwPartitionMethod:I, dwCount:I, dwSize:Z)
EraseTape(hDevice:H, dwEraseType:I, bImmediate:B)
GetTapeParameters(hDevice:H, dwOperation:I, lpdwSize:P, lpTapeInformation:O)
GetTapePosition(hDevice:H, dwPositionType:I, lpdwPartition:O, lpdwOffsetLow:O, lpdwOffsetHigh:O)
GetTapeStatus(hDevice:H)
PrepareTape(hDevice:H, dwOperation:I, bImmediate:B)
SetTapeParameters(hDevice:H, dwOperation:I, lpTapeInformation:P)
SetTapePosition(hDevice:H, dwPositionMethod:I, dwPartition:I, dwOffsetLow:I, dwOffsetHigh:I, bImmediate:B)
WriteTapemark(hDevice:H, dwTapemarkType:I, dwTapemarkCount:I, bImmediate:B)
BackupRead(hFile:H, lpBuffer:O, nNumberOfBytesToRead:Z, lpNumberOfBytesRead:O, bAbort:B, bProcessSecurity:B, lpContext:P)
BackupSeek(hFile:H, dwLowBytesToSeek:I, dwHighBytesToSeek:I, lpdwLowByteSeeked:O, lpdwHighByteSeeked:O, lpContext:P)
BackupWrite(hFile:H, lpBuffer:P, nNumberOfBytesToWrite:Z, lpNumberOfBytesWritten:O, bAbort:B, bProcessSecurity:B, lpContext:P)
"""

_ATOM_PROFILE_API = """
GlobalAddAtomA(lpString:S?)
GlobalAddAtomW(lpString:S?)
GlobalDeleteAtom(nAtom:I)
GlobalFindAtomA(lpString:S?)
GlobalFindAtomW(lpString:S?)
GlobalGetAtomNameA(nAtom:I, lpBuffer:O, nSize:Z)
GlobalGetAtomNameW(nAtom:I, lpBuffer:O, nSize:Z)
AddAtomA(lpString:S?)
AddAtomW(lpString:S?)
DeleteAtom(nAtom:I)
FindAtomA(lpString:S?)
FindAtomW(lpString:S?)
GetAtomNameA(nAtom:I, lpBuffer:O, nSize:Z)
GetAtomNameW(nAtom:I, lpBuffer:O, nSize:Z)
InitAtomTable(nSize:Z)
GetProfileIntA(lpAppName:S, lpKeyName:S, nDefault:I)
GetProfileIntW(lpAppName:S, lpKeyName:S, nDefault:I)
GetProfileStringA(lpAppName:S?, lpKeyName:S?, lpDefault:S?, lpReturnedString:O, nSize:Z)
GetProfileStringW(lpAppName:S?, lpKeyName:S?, lpDefault:S?, lpReturnedString:O, nSize:Z)
GetProfileSectionA(lpAppName:S, lpReturnedString:O, nSize:Z)
GetProfileSectionW(lpAppName:S, lpReturnedString:O, nSize:Z)
WriteProfileStringA(lpAppName:S?, lpKeyName:S?, lpString:S?)
WriteProfileStringW(lpAppName:S?, lpKeyName:S?, lpString:S?)
WriteProfileSectionA(lpAppName:S, lpString:S)
WriteProfileSectionW(lpAppName:S, lpString:S)
GetPrivateProfileIntA(lpAppName:S, lpKeyName:S, nDefault:I, lpFileName:S)
GetPrivateProfileIntW(lpAppName:S, lpKeyName:S, nDefault:I, lpFileName:S)
GetPrivateProfileStringA(lpAppName:S?, lpKeyName:S?, lpDefault:S?, lpReturnedString:O, nSize:Z, lpFileName:S)
GetPrivateProfileStringW(lpAppName:S?, lpKeyName:S?, lpDefault:S?, lpReturnedString:O, nSize:Z, lpFileName:S)
GetPrivateProfileSectionA(lpAppName:S, lpReturnedString:O, nSize:Z, lpFileName:S)
GetPrivateProfileSectionW(lpAppName:S, lpReturnedString:O, nSize:Z, lpFileName:S)
GetPrivateProfileSectionNamesA(lpszReturnBuffer:O, nSize:Z, lpFileName:S)
GetPrivateProfileSectionNamesW(lpszReturnBuffer:O, nSize:Z, lpFileName:S)
GetPrivateProfileStructA(lpszSection:S, lpszKey:S, lpStruct:O, uSizeStruct:Z, szFile:S)
GetPrivateProfileStructW(lpszSection:S, lpszKey:S, lpStruct:O, uSizeStruct:Z, szFile:S)
WritePrivateProfileStringA(lpAppName:S?, lpKeyName:S?, lpString:S?, lpFileName:S)
WritePrivateProfileStringW(lpAppName:S?, lpKeyName:S?, lpString:S?, lpFileName:S)
WritePrivateProfileSectionA(lpAppName:S, lpString:S, lpFileName:S)
WritePrivateProfileSectionW(lpAppName:S, lpString:S, lpFileName:S)
WritePrivateProfileStructA(lpszSection:S, lpszKey:S, lpStruct:P?, uSizeStruct:Z, szFile:S)
WritePrivateProfileStructW(lpszSection:S, lpszKey:S, lpStruct:P?, uSizeStruct:Z, szFile:S)
"""

# Real zero-parameter kernel32 exports.
_ZERO_PARAM_API = """
AllocConsole()
FreeConsole()
AreFileApisANSI()
SetFileApisToANSI()
SetFileApisToOEM()
DebugBreak()
GetACP()
GetOEMCP()
GetCommandLineA()
GetCommandLineW()
GetConsoleCP()
GetConsoleOutputCP()
GetCurrentProcess()
GetCurrentProcessId()
GetCurrentThread()
GetCurrentThreadId()
GetEnvironmentStrings()
GetEnvironmentStringsA()
GetEnvironmentStringsW()
GetLastError()
GetLogicalDrives()
GetProcessHeap()
GetSystemDefaultLCID()
GetSystemDefaultLangID()
GetThreadLocale()
GetTickCount()
GetUserDefaultLCID()
GetUserDefaultLangID()
GetVersion()
IsDebuggerPresent()
TlsAlloc()
SwitchToThread()
"""

# Real NT 4.0 kernel32 internal/undocumented exports.  A DLL-export
# scanner (which is how DTS built its fault list) sees these names but
# has no type information for them; DTS counted such functions among
# the non-injectable, parameter-less set, and so do we.
_INTERNAL_EXPORTS = """
BaseAttachCompleteThunk
BasepDebugDump
CloseConsoleHandle
CmdBatNotification
ConsoleMenuControl
CreateVirtualBuffer
DuplicateConsoleHandle
ExitVDM
ExpungeConsoleCommandHistoryA
ExpungeConsoleCommandHistoryW
ExtendVirtualBuffer
FreeVirtualBuffer
GetConsoleAliasA
GetConsoleAliasW
GetConsoleAliasExesA
GetConsoleAliasExesW
GetConsoleAliasExesLengthA
GetConsoleAliasExesLengthW
GetConsoleAliasesA
GetConsoleAliasesW
GetConsoleAliasesLengthA
GetConsoleAliasesLengthW
GetConsoleCommandHistoryA
GetConsoleCommandHistoryW
GetConsoleCommandHistoryLengthA
GetConsoleCommandHistoryLengthW
GetConsoleDisplayMode
GetConsoleFontInfo
GetConsoleFontSize
GetConsoleHardwareState
GetConsoleInputWaitHandle
GetConsoleKeyboardLayoutNameA
GetConsoleKeyboardLayoutNameW
GetCurrentConsoleFont
GetNextVDMCommand
GetNumberOfConsoleFonts
GetVDMCurrentDirectories
HeapCreateTagsW
HeapExtend
HeapQueryTagW
HeapSummary
HeapUsage
InvalidateConsoleDIBits
IsDebuggerAttached
OpenConsoleW
OpenProfileUserMapping
CloseProfileUserMapping
QueryConsoleIME
QueryWin31IniFilesMappedToRegistry
RegisterConsoleIME
RegisterConsoleVDM
RegisterWaitForInputIdle
RegisterWowBaseHandlers
RegisterWowExec
SetConsoleCommandHistoryMode
SetConsoleCursor
SetConsoleDisplayMode
SetConsoleFont
SetConsoleHardwareState
SetConsoleIcon
SetConsoleKeyShortcuts
SetConsoleMaximumWindowSize
SetConsoleMenuClose
SetConsoleNumberOfCommandsA
SetConsoleNumberOfCommandsW
SetConsolePalette
SetLastConsoleEventActive
SetVDMCurrentDirectories
ShowConsoleCursor
TrimVirtualBuffer
VDMConsoleOperation
VDMOperationStarted
VerifyConsoleIoHandle
VirtualBufferExceptionHandler
WriteConsoleInputVDMA
WriteConsoleInputVDMW
EnumerateLocalComputerNamesA
EnumerateLocalComputerNamesW
GetConsoleNlsMode
GetDevicePowerState
NlsResetProcessLocale
NotifySoundSentry
PrivCopyFileExW
PrivMoveFileIdentityW
RequestDeviceWakeup
RequestWakeupLatency
SetConsoleLocalEUDC
SetConsoleNlsMode
SetConsoleOS2OemFormat
SetThreadIdealProcessor
UTRegister
UTUnRegister
ValidateLCType
ValidateLocale
VerLanguageNameA
VerLanguageNameW
WaitForInputIdleInternal
WriteConsoleFontInfo
"""


def _parse_block(block: str, family: str) -> list[FunctionSig]:
    sigs = []
    for line in block.strip().splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            sigs.append(parse_signature(line, family))
    return sigs


def _parse_names(block: str, family: str) -> list[FunctionSig]:
    sigs = []
    for line in block.strip().splitlines():
        name = line.strip()
        if name and not name.startswith("#"):
            sigs.append(FunctionSig(name, (), family))
    return sigs


def _build_registry() -> dict[str, FunctionSig]:
    families = [
        (_FILE_API, "file"),
        (_PROCESS_API, "process"),
        (_SYNC_API, "sync"),
        (_MEMORY_API, "memory"),
        (_MODULE_API, "module"),
        (_CONSOLE_API, "console"),
        (_STRING_API, "string"),
        (_ENVIRONMENT_API, "environment"),
        (_TIME_API, "time"),
        (_PIPE_COMM_API, "pipe-comm"),
        (_ERROR_DEBUG_API, "error-debug"),
        (_TAPE_API, "tape"),
        (_ATOM_PROFILE_API, "atom-profile"),
    ]
    registry: dict[str, FunctionSig] = {}

    def add(sig: FunctionSig) -> None:
        if sig.name in registry:
            raise SignatureError(f"duplicate export {sig.name}")
        registry[sig.name] = sig

    for block, family in families:
        for sig in _parse_block(block, family):
            add(sig)
    for sig in _parse_names(_ZERO_PARAM_API.replace("()", ""), "zero-param"):
        add(sig)
    for sig in _parse_names(_INTERNAL_EXPORTS, "internal"):
        add(sig)

    # Pad to the paper's exact export-table shape: 681 exports of which
    # 130 take no parameters.  The pad entries stand in for kernel32's
    # remaining ordinal-only exports and for documented exports this
    # simulation has no call sites for; they are never invoked by any
    # workload, so like the majority of real kernel32 functions they are
    # enumerated by the fault-list generator and skipped as inactive.
    zero_param = sum(1 for s in registry.values() if not s.params)
    pad_zero = TOTAL_ZERO_PARAM_EXPORTS - zero_param
    if pad_zero < 0:
        raise SignatureError(f"too many zero-parameter exports ({zero_param})")
    for index in range(pad_zero):
        add(FunctionSig(f"BasepOrdinalExport{index + 1:03d}", (), "internal"))

    pad_total = TOTAL_EXPORTS - len(registry)
    if pad_total < 0:
        raise SignatureError(f"too many exports ({len(registry)})")
    for index in range(pad_total):
        params = (
            ParamSpec("lpReserved", ParamType.PTR_OPT, 0),
            ParamSpec("dwFlags", ParamType.FLAGS, 1),
        )
        add(FunctionSig(f"BasepReservedExport{index + 1:03d}", params, "internal"))
    return registry


TOTAL_EXPORTS = 681
TOTAL_ZERO_PARAM_EXPORTS = 130
TOTAL_INJECTABLE_EXPORTS = TOTAL_EXPORTS - TOTAL_ZERO_PARAM_EXPORTS  # 551

REGISTRY: dict[str, FunctionSig] = _build_registry()


def get_signature(name: str) -> FunctionSig:
    """Look up an export by name; raises ``KeyError`` for unknown names."""
    return REGISTRY[name]


def exists(name: str) -> bool:
    return name in REGISTRY


def iter_signatures() -> Iterator[FunctionSig]:
    """All exports in stable registry order."""
    return iter(REGISTRY.values())


def injectable_signatures() -> Iterator[FunctionSig]:
    """The 551 exports with at least one parameter."""
    return (sig for sig in REGISTRY.values() if sig.injectable)


def find_signature(name: str) -> Optional[FunctionSig]:
    return REGISTRY.get(name)

"""Synchronisation API implementations.

The wait functions are where timeout corruption bites: an all-ones
``dwMilliseconds`` is ``INFINITE``, so a poll that was supposed to time
out and make progress instead blocks forever — one of the hang classes
only ``watchd``'s liveness probing (and no generic resource monitor)
recovers from.
"""

from __future__ import annotations

from ...sim import TIMED_OUT, Hang, Sleep, Wait, WaitAny
from ..errors import (
    ERROR_ALREADY_EXISTS,
    ERROR_INVALID_HANDLE,
    ERROR_INVALID_PARAMETER,
    ERROR_TIMEOUT,
    INVALID_HANDLE_VALUE,
    WAIT_FAILED,
    WAIT_OBJECT_0,
    WAIT_TIMEOUT,
)
from ..memory import AccessViolation, OutCell, WordArray
from ..objects import (
    EventObject,
    MutexObject,
    SemaphoreObject,
    ThreadObject,
    Waitable,
)
from ..process_manager import ProcessObject
from .constants import CURRENT_PROCESS_PSEUDO_HANDLE
from .runtime import Frame, k32impl


def _named_objects(frame: Frame) -> dict:
    """Machine-wide named kernel object namespace."""
    return frame.machine.named_objects


def _create_named(frame: Frame, name, obj) -> int:
    if name:
        namespace = _named_objects(frame)
        existing = namespace.get(name)
        if existing is not None:
            handle = frame.new_handle(existing)
            return frame.fail(ERROR_ALREADY_EXISTS, handle)
        namespace[name] = obj
    return frame.succeed(frame.new_handle(obj))


@k32impl("CreateEventA")
def create_event_a(frame: Frame) -> int:
    frame.opt_pointer(0)
    manual = frame.boolean(1)
    initial = frame.boolean(2)
    name = frame.opt_string(3)
    return _create_named(frame, name, EventObject(manual, initial, name or ""))


@k32impl("CreateEventW")
def create_event_w(frame: Frame) -> int:
    return create_event_a(frame)


@k32impl("OpenEventA")
def open_event_a(frame: Frame) -> int:
    frame.uint(0)
    frame.boolean(1)
    name = frame.string(2)
    obj = _named_objects(frame).get(name)
    if not isinstance(obj, EventObject):
        return frame.fail(ERROR_INVALID_PARAMETER, 0)
    return frame.succeed(frame.new_handle(obj))


@k32impl("SetEvent")
def set_event(frame: Frame) -> int:
    event = frame.handle_object(0, EventObject)
    if event is None:
        return frame.fail(ERROR_INVALID_HANDLE)
    event.set()
    return frame.succeed(1)


@k32impl("ResetEvent")
def reset_event(frame: Frame) -> int:
    event = frame.handle_object(0, EventObject)
    if event is None:
        return frame.fail(ERROR_INVALID_HANDLE)
    event.reset()
    return frame.succeed(1)


@k32impl("PulseEvent")
def pulse_event(frame: Frame) -> int:
    event = frame.handle_object(0, EventObject)
    if event is None:
        return frame.fail(ERROR_INVALID_HANDLE)
    event.pulse()
    return frame.succeed(1)


@k32impl("CreateMutexA")
def create_mutex_a(frame: Frame) -> int:
    frame.opt_pointer(0)
    owned = frame.boolean(1)
    name = frame.opt_string(2)
    mutex = MutexObject(owned, frame.process.pid, name or "")
    return _create_named(frame, name, mutex)


@k32impl("ReleaseMutex")
def release_mutex(frame: Frame) -> int:
    mutex = frame.handle_object(0, MutexObject)
    if mutex is None:
        return frame.fail(ERROR_INVALID_HANDLE)
    if not mutex.release(frame.process.pid):
        return frame.fail(ERROR_INVALID_PARAMETER)
    return frame.succeed(1)


@k32impl("CreateSemaphoreA")
def create_semaphore_a(frame: Frame) -> int:
    frame.opt_pointer(0)
    initial = frame.uint(1)
    maximum = frame.uint(2)
    name = frame.opt_string(3)
    if maximum == 0 or initial > maximum:
        return frame.fail(ERROR_INVALID_PARAMETER, 0)
    return _create_named(frame, name, SemaphoreObject(initial, maximum, name or ""))


@k32impl("ReleaseSemaphore")
def release_semaphore(frame: Frame) -> int:
    sem = frame.handle_object(0, SemaphoreObject)
    if sem is None:
        return frame.fail(ERROR_INVALID_HANDLE)
    previous = sem.release(frame.uint(1))
    if previous is None:
        return frame.fail(ERROR_INVALID_PARAMETER)
    cell = frame.opt_out_cell(2)
    if cell is not None:
        cell.value = previous
    return frame.succeed(1)


def _resolve_waitable(frame: Frame, index: int):
    """Resolve a handle argument to something waitable, or None."""
    raw = frame.args[index].raw
    if raw == CURRENT_PROCESS_PSEUDO_HANDLE:
        # Waiting on (HANDLE)-1 waits on the calling process itself —
        # it never becomes signaled while the caller runs.  A real and
        # nasty consequence of all-ones handle corruption.
        return frame.process.kernel_object
    obj = frame.machine.handles.resolve(raw)
    if obj is None:
        return None
    if isinstance(obj, (Waitable, ProcessObject, ThreadObject)):
        return obj
    return None


def _wait_one(frame: Frame, obj, timeout):
    if isinstance(obj, MutexObject):
        event = obj.acquire_event(frame.process.pid)
    else:
        event = obj.wait_event()
    result = yield Wait(event, timeout=timeout)
    if result is TIMED_OUT:
        event.succeed(TIMED_OUT)  # withdraw from the object's waiter list
        return WAIT_TIMEOUT
    return WAIT_OBJECT_0


@k32impl("WaitForSingleObject")
def wait_for_single_object(frame: Frame):
    obj = _resolve_waitable(frame, 0)
    if obj is None:
        return frame.fail(ERROR_INVALID_HANDLE, WAIT_FAILED)
    timeout = frame.timeout_seconds(1)
    result = yield from _wait_one(frame, obj, timeout)
    return frame.succeed(result)


@k32impl("WaitForSingleObjectEx")
def wait_for_single_object_ex(frame: Frame):
    obj = _resolve_waitable(frame, 0)
    if obj is None:
        return frame.fail(ERROR_INVALID_HANDLE, WAIT_FAILED)
    timeout = frame.timeout_seconds(1)
    frame.boolean(2)
    result = yield from _wait_one(frame, obj, timeout)
    return frame.succeed(result)


@k32impl("WaitForMultipleObjects")
def wait_for_multiple_objects(frame: Frame):
    count = frame.uint(0)
    array = frame.pointer(1, WordArray)
    wait_all = frame.boolean(2)
    timeout = frame.timeout_seconds(3)
    if count == 0 or count > 64:
        return frame.fail(ERROR_INVALID_PARAMETER, WAIT_FAILED)
    if count > len(array.values):
        raise AccessViolation(frame.args[1].raw + 4 * len(array.values), "read")

    objs = []
    for raw in array.values[:count]:
        obj = frame.machine.handles.resolve(raw)
        if obj is None or not isinstance(obj, (Waitable, ProcessObject, ThreadObject)):
            return frame.fail(ERROR_INVALID_HANDLE, WAIT_FAILED)
        objs.append(obj)

    if wait_all:
        # Sequential waiting is equivalent for our workloads (no
        # all-or-nothing atomicity is observable through them).
        for obj in objs:
            result = yield from _wait_one(frame, obj, timeout)
            if result == WAIT_TIMEOUT:
                return frame.succeed(WAIT_TIMEOUT)
        return frame.succeed(WAIT_OBJECT_0)

    events = [obj.wait_event() if not isinstance(obj, MutexObject)
              else obj.acquire_event(frame.process.pid) for obj in objs]
    result = yield WaitAny(events, timeout=timeout)
    if result is TIMED_OUT:
        for event in events:
            event.succeed(TIMED_OUT)
        return frame.succeed(WAIT_TIMEOUT)
    index, _value = result
    for position, event in enumerate(events):
        if position != index and not event.fired:
            event.succeed(TIMED_OUT)
    return frame.succeed(WAIT_OBJECT_0 + index)


@k32impl("SignalObjectAndWait")
def signal_object_and_wait(frame: Frame):
    to_signal = frame.handle_object(0)
    if isinstance(to_signal, EventObject):
        to_signal.set()
    elif isinstance(to_signal, SemaphoreObject):
        to_signal.release(1)
    elif isinstance(to_signal, MutexObject):
        to_signal.release(frame.process.pid)
    else:
        return frame.fail(ERROR_INVALID_HANDLE, WAIT_FAILED)
    obj = _resolve_waitable(frame, 1)
    if obj is None:
        return frame.fail(ERROR_INVALID_HANDLE, WAIT_FAILED)
    timeout = frame.timeout_seconds(2)
    frame.boolean(3)
    result = yield from _wait_one(frame, obj, timeout)
    return frame.succeed(result)


@k32impl("Sleep")
def sleep(frame: Frame):
    timeout = frame.timeout_seconds(0)
    if timeout is None:
        # Sleep(INFINITE): the thread never runs again.
        yield Hang()
        return 0
    yield Sleep(timeout)
    return 0


@k32impl("SleepEx")
def sleep_ex(frame: Frame):
    timeout = frame.timeout_seconds(0)
    frame.boolean(1)
    if timeout is None:
        yield Hang()
        return 0
    yield Sleep(timeout)
    return frame.succeed(0)


@k32impl("WaitNamedPipeA")
def wait_named_pipe_a(frame: Frame):
    frame.string(0)
    timeout = frame.timeout_seconds(1)
    if timeout is None:
        yield Hang()
        return 0
    yield Sleep(min(timeout, 0.01))
    return frame.fail(ERROR_TIMEOUT)


# ----------------------------------------------------------------------
# Critical sections and interlocked operations (process-local)
# ----------------------------------------------------------------------
@k32impl("InitializeCriticalSection")
def initialize_critical_section(frame: Frame) -> int:
    section = frame.pointer(0)
    if isinstance(section, OutCell):
        section.value = 0
    return 0


@k32impl("EnterCriticalSection")
def enter_critical_section(frame: Frame) -> int:
    frame.pointer(0)  # wild/NULL faults — the classic CS crash
    return 0


@k32impl("LeaveCriticalSection")
def leave_critical_section(frame: Frame) -> int:
    frame.pointer(0)
    return 0


@k32impl("DeleteCriticalSection")
def delete_critical_section(frame: Frame) -> int:
    frame.pointer(0)
    return 0


@k32impl("TryEnterCriticalSection")
def try_enter_critical_section(frame: Frame) -> int:
    frame.pointer(0)
    return 1


def _interlocked_cell(frame: Frame) -> OutCell:
    return frame.pointer(0, OutCell)


@k32impl("InterlockedIncrement")
def interlocked_increment(frame: Frame) -> int:
    cell = _interlocked_cell(frame)
    cell.value = (cell.value + 1) & 0xFFFFFFFF
    return cell.value


@k32impl("InterlockedDecrement")
def interlocked_decrement(frame: Frame) -> int:
    cell = _interlocked_cell(frame)
    cell.value = (cell.value - 1) & 0xFFFFFFFF
    return cell.value


@k32impl("InterlockedExchange")
def interlocked_exchange(frame: Frame) -> int:
    cell = _interlocked_cell(frame)
    previous = cell.value
    cell.value = frame.uint(1)
    return previous


@k32impl("InterlockedExchangeAdd")
def interlocked_exchange_add(frame: Frame) -> int:
    cell = _interlocked_cell(frame)
    previous = cell.value
    cell.value = (cell.value + frame.uint(1)) & 0xFFFFFFFF
    return previous


@k32impl("InterlockedCompareExchange")
def interlocked_compare_exchange(frame: Frame) -> int:
    cell = _interlocked_cell(frame)
    previous = cell.value
    if previous == frame.uint(2):
        cell.value = frame.uint(1)
    return previous

"""The Win32 view a simulated program gets of its machine.

A program's ``main(ctx)`` generator receives a :class:`Win32Context`.
Library calls go through ``ctx.k32`` and **must** be delegated with
``yield from`` so that blocking calls (waits, sleeps) can suspend the
calling thread::

    handle = yield from ctx.k32.CreateFileA("c:\\conf\\httpd.conf",
                                            GENERIC_READ, 0, None,
                                            OPEN_EXISTING, 0, None)
    status = yield from ctx.k32.WaitForSingleObject(child, 5000)

Every call funnels through :meth:`Win32Context._invoke`:

1. semantic arguments are lowered to raw 32-bit words,
2. the interception layer lets hooks (the fault injector) rewrite them,
3. the raw words are decoded back against the declared signature,
4. the implementation (specific or generic) runs on the decoded frame.

Step 2/3 is exactly where a corrupted word changes meaning: a zeroed
string pointer decodes as NULL, a flipped handle stops resolving, an
all-ones size means four gigabytes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..sim import Sleep
from .kernel32 import runtime
from .kernel32.signatures import REGISTRY, FunctionSig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .machine import Machine
    from .process_manager import NTProcess


class UnknownExportError(AttributeError):
    """A program referenced a function kernel32 does not export."""


class _K32Proxy:
    """Attribute-style access to the export table: ``ctx.k32.ReadFile``.

    Resolved callables are memoised into the instance dict, so each
    export pays the ``__getattr__`` + closure cost once per process
    rather than once per call.
    """

    def __init__(self, ctx: "Win32Context"):
        self._ctx = ctx

    def __getattr__(self, name: str):
        sig = REGISTRY.get(name)
        if sig is None:
            raise UnknownExportError(f"KERNEL32.dll has no export {name!r}")
        ctx = self._ctx

        def call(*args: Any):
            return ctx._invoke(sig, args)

        call.__name__ = name
        setattr(self, name, call)
        return call


class Win32Context:
    """Per-process gateway to the simulated NT machine."""

    def __init__(self, machine: "Machine", process: "NTProcess"):
        self.machine = machine
        self.process = process
        self.k32 = _K32Proxy(self)

    # ------------------------------------------------------------------
    # Conveniences for program code (not part of the Win32 surface)
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.machine.engine.now

    def compute(self, seconds: float):
        """Model CPU-bound work; scales with the machine's clock speed."""
        yield Sleep(seconds * self.machine.cpu_scale)

    def log_debug(self, message: str) -> None:
        """Program-side diagnostics kept on the machine for tests."""
        self.machine.debug_log.append((self.now, self.process.pid, message))

    def memory(self, address: int):
        """Resolve a raw pointer (e.g. a HeapAlloc result) back to its
        buffer — the program-side equivalent of dereferencing it."""
        return self.machine.address_space.resolve(address)

    # ------------------------------------------------------------------
    # Call dispatch
    # ------------------------------------------------------------------
    def _invoke(self, sig: FunctionSig, sem_args: tuple[Any, ...]):
        if len(sem_args) != len(sig.params):
            raise TypeError(
                f"{sig.name} takes {len(sig.params)} arguments,"
                f" got {len(sem_args)}"
            )
        machine = self.machine
        space = machine.address_space
        raw_args = tuple(map(space.encode, sem_args))
        raw_args = machine.interception.dispatch(self.process, sig, raw_args)
        decoded = list(map(space.decode, raw_args, sig.pointer_flags))
        frame = runtime.Frame(machine, self.process, sig, decoded)
        try:
            impl, blocking = sig._dispatch
        except AttributeError:
            # First call of this export anywhere: the implementation
            # registry is import-time-complete by now, so the lookup
            # result can be pinned on the signature.
            impl = runtime.lookup(sig.name)
            blocking = runtime.is_blocking(sig.name)
            sig._dispatch = (impl, blocking)
        if impl is None:
            result = runtime.generic_implementation(frame)
        elif blocking:
            result = yield from impl(frame)
        else:
            result = impl(frame)
        interception = machine.interception
        if not interception.return_hooks:
            tracer = machine.tracer
            if tracer is None or not tracer.calls_enabled:
                return result  # nothing observes returns on this run
        return interception.dispatch_return(self.process, sig, result)

"""The Win32 view a simulated program gets of its machine.

A program's ``main(ctx)`` generator receives a :class:`Win32Context`.
Library calls go through ``ctx.k32`` and **must** be delegated with
``yield from`` so that blocking calls (waits, sleeps) can suspend the
calling thread::

    handle = yield from ctx.k32.CreateFileA("c:\\conf\\httpd.conf",
                                            GENERIC_READ, 0, None,
                                            OPEN_EXISTING, 0, None)
    status = yield from ctx.k32.WaitForSingleObject(child, 5000)

Every call runs a flattened per-signature *handler* built by
:func:`build_call_handler` the first time a process touches an export:

1. semantic arguments are lowered to raw 32-bit words,
2. the interception layer lets hooks (the fault injector) rewrite them,
3. the raw words are decoded back against the declared signature,
4. the implementation (specific or generic) runs on the decoded frame.

Step 2/3 is exactly where a corrupted word changes meaning: a zeroed
string pointer decodes as NULL, a flipped handle stops resolving, an
all-ones size means four gigabytes.

The handler is a single generator frame with everything the four steps
need — the implementation, its blocking-ness, the hook list, the
invocation counters, the tracer, the per-parameter pointer flags —
pre-bound at registration instead of re-resolved per call.  This
flattens what used to be the proxy → ``_invoke`` → interception
dispatch → implementation chain into one loop body; the hook list and
return-hook list are bound *by object identity*, so hooks added or
removed after registration (``InterceptionLayer.add_hook`` mutates the
list in place) are still honoured on the next call.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..sim import Sleep
from .interception import CallOverride, CallRecord
from .kernel32 import runtime
from .kernel32.signatures import REGISTRY, FunctionSig
from .memory import MASK32, ArgKind, DecodedArg

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .machine import Machine
    from .process_manager import NTProcess


class UnknownExportError(AttributeError):
    """A program referenced a function kernel32 does not export."""


def _resolve_impl(sig: FunctionSig):
    """The (implementation, is_blocking) pair for one export, cached on
    the signature — the registry is import-time-complete by the time
    any process makes its first call."""
    try:
        return sig._dispatch
    except AttributeError:
        impl = runtime.lookup(sig.name)
        blocking = runtime.is_blocking(sig.name)
        if impl is None:
            impl = runtime.generic_implementation
            blocking = False
        sig._dispatch = (impl, blocking)
        return sig._dispatch


def build_call_handler(ctx: "Win32Context", sig: FunctionSig):
    """Compile the flattened call handler for one (process, export).

    Everything resolvable at registration time is captured in the
    closure: per-call work is the encode loop, the invocation-counter
    bump, the (usually empty) hook scan, the decode loop, and the
    implementation itself.  Mutable collaborators — the hook lists, the
    per-pid invocation dict, the per-role called set, the machine-wide
    trace — are captured by identity, so registration-time binding
    observes later mutation.
    """
    machine = ctx.machine
    process = ctx.process
    interception = machine.interception
    space = machine.address_space
    encode = space.encode
    decode = space.decode
    int_args = space._int_args
    engine = machine.engine
    tracer = machine.tracer  # fixed at Machine construction
    name = sig.name
    nparams = len(sig.params)
    pointer_flags = sig.pointer_flags
    has_pointers = any(pointer_flags)
    impl, blocking = _resolve_impl(sig)
    hooks = interception.hooks
    return_hooks = interception.return_hooks
    per_pid = interception._invocations.get(process.pid)
    if per_pid is None:
        per_pid = interception._invocations[process.pid] = {}
    called = interception._called_by_role.get(process.role)
    if called is None:
        called = interception._called_by_role[process.role] = set()
    called_add = called.add
    call_counts = interception._call_counts
    keep_full_trace = interception.keep_full_trace
    trace_append = interception.trace.append
    pid = process.pid
    role = process.role
    Frame = runtime.Frame

    def call(*sem_args: Any):
        if len(sem_args) != nparams:
            raise TypeError(
                f"{name} takes {nparams} arguments, got {len(sem_args)}"
            )
        # --- 1. encode: semantic arguments to raw 32-bit words -------
        # (left-to-right, like the interning order corrupted-address
        # determinism depends on; plain ints — handles, sizes, flags —
        # take the inline path, everything else the full encoder)
        raw_list = []
        for value in sem_args:
            if type(value) is int:
                raw_list.append(value & MASK32)
            elif value is None:
                raw_list.append(0)
            else:
                raw_list.append(encode(value))
        raw_args = tuple(raw_list)
        # --- 2. interception: hooks may rewrite the raw words, or ----
        # preempt the call outright (a CallOverride: I/O and resource
        # faults fail or delay the call without touching its arguments)
        invocation = per_pid.get(name, 0) + 1
        per_pid[name] = invocation
        injected = False
        override = None
        if hooks:
            for hook in hooks:
                replacement = hook.on_call(process, sig, invocation, raw_args)
                if replacement is not None:
                    if replacement.__class__ is CallOverride:
                        override = replacement
                    else:
                        raw_args = replacement
                    injected = True
        called_add(name)
        call_counts[name] = call_counts.get(name, 0) + 1
        if tracer is not None and tracer.calls_enabled:
            tracer.emit(engine.now, "call", "enter",
                        pid=pid, role=role, func=name,
                        invocation=invocation, injected=injected)
        if keep_full_trace:
            trace_append(CallRecord(
                engine.now, pid, role, name, invocation, injected,
            ))
        if override is not None:
            if override.delay > 0.0:
                yield Sleep(override.delay)
            if override.skip:
                process.last_error = override.last_error
                result = override.result
                if not return_hooks:
                    if tracer is None or not tracer.calls_enabled:
                        return result
                return interception.dispatch_return(process, sig, result)
        # --- 3. decode: raw words back against the declared types ----
        decoded = []
        if has_pointers:
            for raw, pointer_like in zip(raw_args, pointer_flags):
                if pointer_like:
                    decoded.append(decode(raw, True))
                else:
                    raw &= MASK32
                    arg = int_args.get(raw)
                    if arg is None:
                        arg = int_args[raw] = DecodedArg(raw, ArgKind.INT)
                    decoded.append(arg)
        else:
            for raw in raw_args:
                raw &= MASK32
                arg = int_args.get(raw)
                if arg is None:
                    arg = int_args[raw] = DecodedArg(raw, ArgKind.INT)
                decoded.append(arg)
        # --- 4. run the implementation on the decoded frame ----------
        frame = Frame(machine, process, sig, decoded)
        if blocking:
            result = yield from impl(frame)
        else:
            result = impl(frame)
        if not return_hooks:
            if tracer is None or not tracer.calls_enabled:
                return result  # nothing observes returns on this run
        return interception.dispatch_return(process, sig, result)

    call.__name__ = name
    call.__qualname__ = f"k32.{name}"
    return call


class _K32Proxy:
    """Attribute-style access to the export table: ``ctx.k32.ReadFile``.

    Resolution compiles the flattened handler (see
    :func:`build_call_handler`) and memoises it into the instance dict,
    so each export pays the ``__getattr__`` + compilation cost once per
    process rather than once per call.
    """

    def __init__(self, ctx: "Win32Context"):
        self._ctx = ctx

    def __getattr__(self, name: str):
        sig = REGISTRY.get(name)
        if sig is None:
            raise UnknownExportError(f"KERNEL32.dll has no export {name!r}")
        call = build_call_handler(self._ctx, sig)
        setattr(self, name, call)
        return call


class Win32Context:
    """Per-process gateway to the simulated NT machine."""

    def __init__(self, machine: "Machine", process: "NTProcess"):
        self.machine = machine
        self.process = process
        self.k32 = _K32Proxy(self)

    # ------------------------------------------------------------------
    # Conveniences for program code (not part of the Win32 surface)
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.machine.engine.now

    def compute(self, seconds: float):
        """Model CPU-bound work; scales with the machine's clock speed
        and with any active CPU-starvation tax (a resource fault)."""
        machine = self.machine
        yield Sleep(seconds * machine.cpu_scale
                    * machine.pressure.cpu_tax(self.process.role))

    def log_debug(self, message: str) -> None:
        """Program-side diagnostics kept on the machine for tests."""
        self.machine.debug_log.append((self.now, self.process.pid, message))

    def memory(self, address: int):
        """Resolve a raw pointer (e.g. a HeapAlloc result) back to its
        buffer — the program-side equivalent of dereferencing it."""
        return self.machine.address_space.resolve(address)

    # ------------------------------------------------------------------
    # Call dispatch (reference form)
    # ------------------------------------------------------------------
    def _invoke(self, sig: FunctionSig, sem_args: tuple[Any, ...]):
        """Unspecialised dispatch, kept as the readable reference for
        what a compiled handler does; ``ctx.k32`` never routes through
        it, but tests exercise it against the flattened handlers."""
        if len(sem_args) != len(sig.params):
            raise TypeError(
                f"{sig.name} takes {len(sig.params)} arguments,"
                f" got {len(sem_args)}"
            )
        machine = self.machine
        space = machine.address_space
        raw_args = tuple(map(space.encode, sem_args))
        raw_args, override = machine.interception.dispatch(
            self.process, sig, raw_args)
        interception = machine.interception
        if override is not None:
            if override.delay > 0.0:
                yield Sleep(override.delay)
            if override.skip:
                self.process.last_error = override.last_error
                result = override.result
                if not interception.return_hooks:
                    tracer = machine.tracer
                    if tracer is None or not tracer.calls_enabled:
                        return result
                return interception.dispatch_return(self.process, sig, result)
        decoded = list(map(space.decode, raw_args, sig.pointer_flags))
        frame = runtime.Frame(machine, self.process, sig, decoded)
        impl, blocking = _resolve_impl(sig)
        if blocking:
            result = yield from impl(frame)
        else:
            result = impl(frame)
        interception = machine.interception
        if not interception.return_hooks:
            tracer = machine.tracer
            if tracer is None or not tracer.calls_enabled:
                return result  # nothing observes returns on this run
        return interception.dispatch_return(self.process, sig, result)

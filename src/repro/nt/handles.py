"""NT object handles.

Handles are small integers referring to kernel objects (processes,
events, files, ...).  The table hands out values that look like real NT
handles (multiples of 4) and never reuses them, so a bit-flipped handle
value is overwhelmingly likely to be *invalid* rather than to alias a
different live object — matching what the paper's fault type does on a
real system.
"""

from __future__ import annotations

from typing import Any, Optional

from .errors import INVALID_HANDLE_VALUE


class KernelObject:
    """Base class for everything a handle can refer to."""

    kind = "object"

    def __init__(self, name: str = ""):
        self.name = name

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name or hex(id(self))}>"


class HandleTable:
    """Machine-wide handle table.

    Real NT tables are per-process; a machine-wide table is an
    acceptable simplification because the simulation never relies on
    handle-value collisions between processes, only on valid/invalid
    resolution — which behaves identically.
    """

    _FIRST = 0x24
    _STRIDE = 4

    def __init__(self) -> None:
        self._next = self._FIRST
        self._objects: dict[int, KernelObject] = {}

    def allocate(self, obj: KernelObject) -> int:
        """Insert ``obj`` and return its new handle value."""
        handle = self._next
        self._next += self._STRIDE
        self._objects[handle] = obj
        return handle

    def resolve(self, handle: int, kind: Optional[type] = None) -> Optional[KernelObject]:
        """The object behind ``handle`` or None if invalid/closed.

        ``kind`` optionally narrows acceptance to one object class;
        a live handle of the wrong kind resolves to None (the caller
        reports ``ERROR_INVALID_HANDLE``, as NT does for type mismatches).
        """
        if handle in (0, INVALID_HANDLE_VALUE):
            return None
        obj = self._objects.get(handle)
        if obj is None:
            return None
        if kind is not None and not isinstance(obj, kind):
            return None
        return obj

    def close(self, handle: int) -> bool:
        """Remove the table entry; later resolutions fail."""
        return self._objects.pop(handle, None) is not None

    def is_valid(self, handle: int) -> bool:
        return handle in self._objects

    def handles_for(self, obj: Any) -> list[int]:
        """All live handles referring to ``obj`` (diagnostics only)."""
        return [h for h, o in self._objects.items() if o is obj]

    @property
    def live_count(self) -> int:
        return len(self._objects)

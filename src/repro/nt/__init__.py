"""Simulated Windows NT 4.0 substrate.

The pieces compose into a :class:`Machine`: processes and threads,
handles and kernel objects, a 681-export KERNEL32 with an interception
layer (the SWIFI mechanism), the Service Control Manager with its
pending-state database lock, the event log, and an in-memory
filesystem.
"""

from . import kernel32
from .context import Win32Context
from .errors import (
    AccessViolation,
    HeapCorruption,
    ProcessExit,
    StructuredException,
    ThreadExit,
    error_name,
)
from .eventlog import EventLog, EventRecord, EventType
from .filesystem import FileSystem
from .handles import HandleTable, KernelObject
from .interception import CallHook, CallRecord, InterceptionLayer
from .machine import Machine
from .memory import AddressSpace, Buffer, CString, OutCell, WordArray
from .objects import (
    ConsoleObject,
    EventObject,
    FileObject,
    HeapObject,
    MutexObject,
    SemaphoreObject,
    StartupInfo,
    ThreadEntry,
    ThreadObject,
)
from .process_manager import (
    HarnessError,
    NTProcess,
    ProcessManager,
    ProcessObject,
    Program,
)
from .scm import Service, ServiceControlManager, ServiceState

__all__ = [
    "Machine",
    "Win32Context",
    "kernel32",
    "NTProcess",
    "ProcessManager",
    "ProcessObject",
    "Program",
    "HarnessError",
    "ServiceControlManager",
    "Service",
    "ServiceState",
    "EventLog",
    "EventRecord",
    "EventType",
    "FileSystem",
    "HandleTable",
    "KernelObject",
    "InterceptionLayer",
    "CallHook",
    "CallRecord",
    "AddressSpace",
    "Buffer",
    "CString",
    "OutCell",
    "WordArray",
    "EventObject",
    "MutexObject",
    "SemaphoreObject",
    "FileObject",
    "HeapObject",
    "ConsoleObject",
    "ThreadEntry",
    "ThreadObject",
    "StartupInfo",
    "StructuredException",
    "AccessViolation",
    "HeapCorruption",
    "ProcessExit",
    "ThreadExit",
    "error_name",
]

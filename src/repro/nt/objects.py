"""Kernel object types referenced by handles.

These carry just enough semantics for the workloads: events and mutexes
support genuine blocking waits over the simulation engine, files expose
positioned reads over the in-memory filesystem, heaps track their
allocations so that freeing a corrupted pointer is detectable, and
process objects become signaled on exit (the mechanism ``watchd`` uses
to detect server death).
"""

from __future__ import annotations

from typing import Optional

from ..sim import SimEvent
from .handles import KernelObject


class Waitable(KernelObject):
    """Base for objects usable with the wait functions.

    A waitable exposes :meth:`wait_event`, returning a one-shot
    :class:`SimEvent` that fires when the object becomes signaled for
    this waiter.  Implementations decide latching semantics.
    """

    kind = "waitable"

    def wait_event(self) -> SimEvent:
        raise NotImplementedError

    @property
    def signaled_now(self) -> bool:
        raise NotImplementedError


class EventObject(Waitable):
    """NT event (manual-reset or auto-reset)."""

    kind = "event"

    def __init__(self, manual_reset: bool, initial_state: bool, name: str = ""):
        super().__init__(name)
        self.manual_reset = manual_reset
        self.signaled = initial_state
        self._waiters: list[SimEvent] = []

    @property
    def signaled_now(self) -> bool:
        return self.signaled

    def set(self) -> None:
        if self.manual_reset:
            self.signaled = True
            waiters, self._waiters = self._waiters, []
            for waiter in waiters:
                waiter.succeed(self)
            return
        # Auto-reset: release exactly one waiter, or latch until one arrives.
        while self._waiters:
            waiter = self._waiters.pop(0)
            if not waiter.fired:
                waiter.succeed(self)
                return
        self.signaled = True

    def reset(self) -> None:
        self.signaled = False

    def pulse(self) -> None:
        """Wake current waiters without latching (NT ``PulseEvent``)."""
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter.succeed(self)

    def wait_event(self) -> SimEvent:
        event = SimEvent(f"event:{self.name}")
        if self.signaled:
            if not self.manual_reset:
                self.signaled = False
            event.succeed(self)
        else:
            self._waiters.append(event)
        return event


class MutexObject(Waitable):
    """NT mutex with ownership but without recursion counting subtleties."""

    kind = "mutex"

    def __init__(self, initially_owned: bool, owner_pid: Optional[int], name: str = ""):
        super().__init__(name)
        self.owner_pid = owner_pid if initially_owned else None
        self._waiters: list[tuple[SimEvent, int]] = []

    @property
    def signaled_now(self) -> bool:
        return self.owner_pid is None

    def acquire_event(self, pid: int) -> SimEvent:
        event = SimEvent(f"mutex:{self.name}")
        if self.owner_pid is None or self.owner_pid == pid:
            self.owner_pid = pid
            event.succeed(self)
        else:
            self._waiters.append((event, pid))
        return event

    def wait_event(self) -> SimEvent:  # pragma: no cover - mutex waits go via pid
        raise NotImplementedError("use acquire_event(pid)")

    def release(self, pid: int) -> bool:
        if self.owner_pid != pid:
            return False
        while self._waiters:
            event, waiter_pid = self._waiters.pop(0)
            if not event.fired:
                self.owner_pid = waiter_pid
                event.succeed(self)
                return True
        self.owner_pid = None
        return True


class SemaphoreObject(Waitable):
    """Counted semaphore."""

    kind = "semaphore"

    def __init__(self, initial: int, maximum: int, name: str = ""):
        super().__init__(name)
        self.count = initial
        self.maximum = maximum
        self._waiters: list[SimEvent] = []

    @property
    def signaled_now(self) -> bool:
        return self.count > 0

    def wait_event(self) -> SimEvent:
        event = SimEvent(f"sem:{self.name}")
        if self.count > 0:
            self.count -= 1
            event.succeed(self)
        else:
            self._waiters.append(event)
        return event

    def release(self, count: int = 1) -> Optional[int]:
        """Release; returns previous count, or None past the maximum."""
        previous = self.count
        if previous + count > self.maximum:
            return None
        remaining = count
        while remaining and self._waiters:
            event = self._waiters.pop(0)
            if not event.fired:
                event.succeed(self)
                remaining -= 1
        self.count += remaining
        return previous


class FileObject(KernelObject):
    """An open file over the in-memory filesystem."""

    kind = "file"

    def __init__(self, path: str, data: bytes, writable: bool,
                 readable: bool = True):
        super().__init__(path)
        self.path = path
        self.data = bytearray(data)
        self.writable = writable
        self.readable = readable
        self.position = 0
        self.deleted = False

    def read(self, count: int) -> bytes:
        # memoryview slicing avoids the intermediate bytearray copy —
        # the web workloads stream a 115 kB page through here on every
        # static request, so each read would otherwise copy twice.
        start = self.position
        chunk = bytes(memoryview(self.data)[start:start + count])
        self.position = start + len(chunk)
        return chunk

    def write(self, payload: bytes) -> int:
        end = self.position + len(payload)
        if end > len(self.data):
            self.data.extend(b"\0" * (end - len(self.data)))
        self.data[self.position:end] = payload
        self.position = end
        return len(payload)

    @property
    def size(self) -> int:
        return len(self.data)


class FindObject(KernelObject):
    """Directory enumeration state for ``FindFirstFile``/``FindNextFile``."""

    kind = "find"

    def __init__(self, matches: list[str]):
        super().__init__("find")
        self.matches = matches
        self.index = 0

    def next_match(self) -> Optional[str]:
        if self.index >= len(self.matches):
            return None
        match = self.matches[self.index]
        self.index += 1
        return match


class HeapObject(KernelObject):
    """A private heap tracking live allocation addresses."""

    kind = "heap"

    def __init__(self, name: str = "heap"):
        super().__init__(name)
        self.allocations: set[int] = set()
        self.destroyed = False


class FileMappingObject(KernelObject):
    """File-mapping section object."""

    kind = "file-mapping"

    def __init__(self, backing: Optional[FileObject], size: int, name: str = ""):
        super().__init__(name)
        self.backing = backing
        self.size = size


class PipeObject(KernelObject):
    """Anonymous pipe endpoint pair (modelled as one shared buffer)."""

    kind = "pipe"

    def __init__(self, name: str = "pipe"):
        super().__init__(name)
        self.buffer = bytearray()
        self.closed = False


class ThreadEntry:
    """A thread start address: wraps a zero-argument callable returning
    the thread's generator body.  Programs intern one of these and pass
    its address as ``lpStartAddress``; a corrupted address therefore
    starts a thread at garbage — which, as on NT, crashes the process."""

    def __init__(self, body_factory, label: str = "thread"):
        self.body_factory = body_factory
        self.label = label

    def __repr__(self) -> str:
        return f"<ThreadEntry {self.label}>"


class ThreadObject(Waitable):
    """Kernel object behind a thread handle; signaled when it ends."""

    kind = "thread"

    def __init__(self, sim_thread, name: str = "thread"):
        super().__init__(name)
        self.sim_thread = sim_thread

    @property
    def signaled_now(self) -> bool:
        return self.sim_thread is None or not self.sim_thread.alive

    def wait_event(self) -> SimEvent:
        done = SimEvent(f"{self.name}.wait")
        if self.sim_thread is None:
            done.succeed(None)
        else:
            # Per-waiter event (see ProcessObject.wait_event): timeout
            # poisoning must not fire the thread's shared done latch.
            self.sim_thread.done.add_waiter(done.succeed)
        return done


class ModuleObject(KernelObject):
    """A loaded library."""

    kind = "module"

    def __init__(self, path: str):
        super().__init__(path)
        self.path = path


class ProcStub:
    """An address returned by ``GetProcAddress``."""

    __slots__ = ("module", "proc_name")

    def __init__(self, module: str, proc_name: str):
        self.module = module
        self.proc_name = proc_name

    def __repr__(self) -> str:
        return f"<ProcStub {self.module}!{self.proc_name}>"


class ConsoleObject(KernelObject):
    """A console input/output handle target."""

    kind = "console"

    def __init__(self, name: str):
        super().__init__(name)
        self.written: list[bytes] = []


class StartupInfo:
    """``STARTUPINFO`` stand-in passed by pointer to CreateProcess."""

    __slots__ = ("desktop", "title", "flags")

    def __init__(self, title: str = "", flags: int = 0):
        self.desktop = "WinSta0\\Default"
        self.title = title
        self.flags = flags


class TlsSlots:
    """Per-process thread-local-storage slots (shared across simulated
    threads; the workloads only store process-global pointers there)."""

    def __init__(self) -> None:
        self._next = 1
        self.values: dict[int, int] = {}

    def alloc(self) -> int:
        index = self._next
        self._next += 1
        self.values[index] = 0
        return index

    def free(self, index: int) -> bool:
        return self.values.pop(index, None) is not None

"""In-memory filesystem for the simulated machine.

Holds the workload's document roots (HTML files, CGI scripts, server
configuration files, database files).  Paths are case-insensitive with
backslash separators, like NT filesystems.
"""

from __future__ import annotations

from typing import Iterable, Optional


def normalize(path: str) -> str:
    """Canonical form: lower-case, backslash-separated, no drive games."""
    return path.replace("/", "\\").lower()


class FileSystem:
    """A flat path → bytes store with enough semantics for the servers."""

    def __init__(self) -> None:
        self._files: dict[str, bytes] = {}

    def write_file(self, path: str, data: bytes | str) -> None:
        if isinstance(data, str):
            data = data.encode("latin-1")
        self._files[normalize(path)] = bytes(data)

    def read_file(self, path: str) -> Optional[bytes]:
        """File contents, or None if the path does not exist."""
        return self._files.get(normalize(path))

    def exists(self, path: str) -> bool:
        return normalize(path) in self._files

    def delete(self, path: str) -> bool:
        return self._files.pop(normalize(path), None) is not None

    def size(self, path: str) -> Optional[int]:
        data = self._files.get(normalize(path))
        return None if data is None else len(data)

    def list_dir(self, prefix: str) -> Iterable[str]:
        """All stored paths under a directory prefix."""
        prefix = normalize(prefix).rstrip("\\") + "\\"
        return sorted(p for p in self._files if p.startswith(prefix))

    def __len__(self) -> int:
        return len(self._files)

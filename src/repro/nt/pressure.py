"""Machine-wide resource/I-O fault state.

The windowed injectors (:mod:`repro.core.windowed`) toggle faults on
and off here; the effect sites — the heap allocator, the CPU-time
model, the transport fabric — consult this object on their own paths
instead of scanning hook lists.  A machine with nothing armed pays one
attribute test per consultation, which is what keeps the zero-armed
campaign overhead inside the bench gate.

Everything here is deterministic: severities below 1.0 are applied by
the injector's error-diffusion counter, never a random draw, so runs
remain bit-reproducible across serial/pool execution and kill+resume.
"""

from __future__ import annotations

from typing import Optional


class PressureState:
    """Active sustained faults, by effect site.

    ``memory`` / ``cpu`` hold the arming :class:`ResourceInjector`
    while its window is open (None otherwise); ``net`` holds the
    arming :class:`IoInjector` for a transport-op fault.  The slots
    are injectors, not specs, so every denied allocation and taxed
    compute is credited back as an activation impact.
    """

    __slots__ = ("memory", "cpu", "net")

    def __init__(self):
        self.memory = None
        self.cpu = None
        self.net: Optional[object] = None

    # ------------------------------------------------------------------
    def deny_alloc(self, role: str) -> bool:
        """Should this allocation by ``role`` fail under memory
        pressure?  Consulted by the heap/virtual allocators."""
        injector = self.memory
        if injector is None:
            return False
        return injector.consume(role)

    def cpu_tax(self, role: str) -> float:
        """Service-time multiplier for CPU-bound work by ``role``
        (1.0 when no starvation fault is active)."""
        injector = self.cpu
        if injector is None:
            return 1.0
        return injector.tax(role)

    def __repr__(self) -> str:
        armed = [name for name in self.__slots__
                 if getattr(self, name) is not None]
        return f"<PressureState armed={armed or 'none'}>"

"""Service Control Manager.

Models the NT 4.0 SCM behaviours the paper's results hinge on:

- the service state machine (STOPPED / START_PENDING / RUNNING /
  STOP_PENDING);
- the **database lock**: while any service is in a pending state the
  SCM denies state-change requests with
  ``ERROR_SERVICE_DATABASE_LOCKED``.  The paper traces the slow Apache
  restarts directly to this: *"the SCM assumes that the service is in
  the 'Start Pending' state.  When any service is in a pending state,
  the SCM locks its database, which causes any state change requests to
  the SCM to be denied.  Thus, both MSCS and watchd must wait until the
  'Start Pending' state times out before initiating a restart"*;
- the pending timeout (*wait hint*): a service that dies — or hangs —
  before reporting RUNNING stays START_PENDING until its wait hint
  expires, at which point the SCM declares the start failed, reaps any
  leftover process, and releases the lock;
- queries (``QueryServiceStatus``) are read-only and always allowed.

Service programs report readiness through
:meth:`ServiceControlManager.notify_running`, the stand-in for
``SetServiceStatus(SERVICE_RUNNING)`` (an ADVAPI32 entry point, hence
outside the paper's KERNEL32-only injection surface).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional

from ..sim import Timer
from .errors import (
    ERROR_SERVICE_ALREADY_RUNNING,
    ERROR_SERVICE_DATABASE_LOCKED,
    ERROR_SERVICE_DOES_NOT_EXIST,
    ERROR_SERVICE_NOT_ACTIVE,
    ERROR_SUCCESS,
)
from .eventlog import EventType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .machine import Machine
    from .process_manager import NTProcess

EVENT_SOURCE = "Service Control Manager"
EVENT_ID_START_FAILED = 7000
EVENT_ID_UNEXPECTED_STOP = 7031
EVENT_ID_STARTED = 7036


class ServiceState(enum.Enum):
    STOPPED = "stopped"
    START_PENDING = "start-pending"
    RUNNING = "running"
    STOP_PENDING = "stop-pending"


class Service:
    """One registered service."""

    def __init__(self, name: str, image_name: str, wait_hint: float):
        self.name = name
        self.image_name = image_name
        self.wait_hint = wait_hint
        self.state = ServiceState.STOPPED
        self.process: Optional["NTProcess"] = None
        # When the *current incarnation* reported RUNNING (None until
        # it does); middleware uses this to distinguish a start failure
        # from an immediate post-start death.
        self.running_since: Optional[float] = None
        self.start_count = 0
        self.failed_start_count = 0
        self.unexpected_stop_count = 0
        self.pending_timer: Optional[Timer] = None
        self.history: list[tuple[float, ServiceState]] = []

    def __repr__(self) -> str:
        return f"<Service {self.name} {self.state.value}>"


class ServiceControlManager:
    """The machine's SCM instance."""

    def __init__(self, machine: "Machine", lock_enabled: bool = True):
        self.machine = machine
        self.services: dict[str, Service] = {}
        # Ablation knob: with the lock disabled, pending services no
        # longer block state-change requests (used to quantify how much
        # of the slow-Apache-restart effect the lock is responsible for).
        self.lock_enabled = lock_enabled

    # ------------------------------------------------------------------
    # Registration / queries
    # ------------------------------------------------------------------
    def create_service(self, name: str, image_name: str,
                       wait_hint: float = 30.0) -> Service:
        if name in self.services:
            raise ValueError(f"service {name!r} already exists")
        service = Service(name, image_name, wait_hint)
        self.services[name] = service
        return service

    def get_service(self, name: str) -> Optional[Service]:
        return self.services.get(name)

    def query_service_state(self, name: str) -> Optional[ServiceState]:
        """``QueryServiceStatus``: read-only, never blocked by the lock."""
        service = self.services.get(name)
        return None if service is None else service.state

    def service_process(self, name: str) -> Optional["NTProcess"]:
        """The live process of a service, if any (``watchd`` uses this
        through its ``getServiceInfo`` helper)."""
        service = self.services.get(name)
        if service is None or service.process is None:
            return None
        return service.process if service.process.alive else None

    @property
    def database_locked(self) -> bool:
        """True while any service is in a pending state."""
        if not self.lock_enabled:
            return False
        return any(
            s.state in (ServiceState.START_PENDING, ServiceState.STOP_PENDING)
            for s in self.services.values()
        )

    # ------------------------------------------------------------------
    # State changes
    # ------------------------------------------------------------------
    def start_service(self, name: str) -> int:
        """Attempt to start a service; returns a Win32 error code."""
        error = self._start_service(name)
        tracer = self.machine.tracer
        if tracer is not None and tracer.outcome_enabled:
            tracer.emit(self.machine.engine.now, "scm", "start",
                        service=name, error=error)
        return error

    def _start_service(self, name: str) -> int:
        service = self.services.get(name)
        if service is None:
            return ERROR_SERVICE_DOES_NOT_EXIST
        if self.database_locked:
            return ERROR_SERVICE_DATABASE_LOCKED
        if service.state in (ServiceState.START_PENDING,
                             ServiceState.STOP_PENDING):
            # Only reachable with the lock ablated: supersede the
            # pending incarnation instead of denying the request.
            self._cancel_pending_timer(service)
            if service.process is not None and service.process.alive:
                service.process.terminate(exit_code=1)
            self._set_state(service, ServiceState.STOPPED)
        if service.state is ServiceState.RUNNING:
            return ERROR_SERVICE_ALREADY_RUNNING
        process = self.machine.processes.create_from_image(
            service.image_name, command_line=service.image_name,
        )
        if process is None:
            self._log(EventType.ERROR, EVENT_ID_START_FAILED,
                      f"The {name} service failed to start: image not found.")
            return ERROR_SERVICE_DOES_NOT_EXIST
        service.process = process
        service.start_count += 1
        service.running_since = None
        self._set_state(service, ServiceState.START_PENDING)
        service.pending_timer = self.machine.engine.schedule(
            service.wait_hint, self._pending_timeout, service,
        )
        process.exit_event.add_waiter(
            lambda _code, svc=service, proc=process: self._on_exit(svc, proc)
        )
        return ERROR_SUCCESS

    def stop_service(self, name: str) -> int:
        """Stop a service (used by middleware before a restart)."""
        service = self.services.get(name)
        if service is None:
            return ERROR_SERVICE_DOES_NOT_EXIST
        if self.database_locked and service.state is not ServiceState.START_PENDING:
            return ERROR_SERVICE_DATABASE_LOCKED
        if service.state is ServiceState.STOPPED:
            return ERROR_SERVICE_NOT_ACTIVE
        if service.state is ServiceState.START_PENDING:
            # A stop during start-pending is itself denied by the lock.
            return ERROR_SERVICE_DATABASE_LOCKED
        self._cancel_pending_timer(service)
        if service.process is not None and service.process.alive:
            service.process.terminate(exit_code=0)
        self._set_state(service, ServiceState.STOPPED)
        return ERROR_SUCCESS

    def notify_running(self, process: "NTProcess") -> bool:
        """A service program reported ``SERVICE_RUNNING``."""
        for service in self.services.values():
            if service.process is process:
                if not process.alive:
                    return False
                self._cancel_pending_timer(service)
                service.running_since = self.machine.engine.now
                self._set_state(service, ServiceState.RUNNING)
                self._log(EventType.INFORMATION, EVENT_ID_STARTED,
                          f"The {service.name} service entered the running state.")
                return True
        return False

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _pending_timeout(self, service: Service) -> None:
        if service.state is not ServiceState.START_PENDING:
            return
        service.pending_timer = None
        service.failed_start_count += 1
        # Reap whatever is left of the failed start (a hung starter
        # would otherwise hold the service's resources forever).
        if service.process is not None and service.process.alive:
            service.process.terminate(exit_code=1)
        self._set_state(service, ServiceState.STOPPED)
        self._log(EventType.ERROR, EVENT_ID_START_FAILED,
                  f"The {service.name} service failed to start in a timely fashion.")

    def _on_exit(self, service: Service, process: "NTProcess") -> None:
        if service.process is not process:
            return  # stale notification from a previous incarnation
        if service.state is ServiceState.RUNNING:
            service.unexpected_stop_count += 1
            self._set_state(service, ServiceState.STOPPED)
            self._log(EventType.ERROR, EVENT_ID_UNEXPECTED_STOP,
                      f"The {service.name} service terminated unexpectedly.")
        # Death while START_PENDING keeps the pending state (and the
        # database lock) until the wait hint expires — the scenario the
        # paper observed with Apache.

    def _set_state(self, service: Service, state: ServiceState) -> None:
        service.state = state
        service.history.append((self.machine.engine.now, state))
        tracer = self.machine.tracer
        if tracer is not None and tracer.outcome_enabled:
            tracer.emit(self.machine.engine.now, "scm", "state",
                        service=service.name, state=state.value)

    def _cancel_pending_timer(self, service: Service) -> None:
        if service.pending_timer is not None:
            service.pending_timer.cancel()
            service.pending_timer = None

    def _log(self, event_type: EventType, event_id: int, message: str) -> None:
        self.machine.eventlog.write(
            self.machine.engine.now, EVENT_SOURCE, event_type, event_id, message,
        )

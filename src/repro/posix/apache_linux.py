"""Apache on Linux — the workload of the paper's preliminary port.

The same master/child architecture as the Win32 build, expressed in
libc calls: the master reads ``httpd.conf``, daemonises, spawns its
single child worker, and respawns it with ``waitpid``/``kill``
semantics; the child serves the identical 115 kB static + 1 kB CGI
workload.  The HttpClient and the whole DTS core are reused untouched.
"""

from __future__ import annotations

from ..net.http import (
    HTTP_NOT_FOUND,
    HTTP_OK,
    HTTP_SERVER_ERROR,
    HttpRequest,
    HttpResponse,
    ProbePing,
    ProbePong,
)
from ..net.transport import RESET, Side
from ..nt.memory import Buffer, OutCell
from ..servers import content
from ..sim import TIMED_OUT, Sleep, Wait
from .context import PosixContext
from .libc import ERR, O_CREAT, O_WRONLY
from .initd import get_supervisor

MASTER_IMAGE = "httpd"
CHILD_IMAGE = "httpd-child"
SERVICE_NAME = "httpd"

CONF_PATH = "/etc/httpd/httpd.conf"
DOCROOT = "/var/www/html"
CGI_SCRIPT = "/var/www/cgi-bin/report.pl"

STATIC_SERVICE_TIME = 4.3   # the Linux box is the same 100 MHz class
CGI_SERVICE_TIME = 5.1
CHILD_STARTUP_TIME = 1.2


def install_content(fs) -> None:
    fs.write_file(CONF_PATH, b"[server]\nPort=80\nMaxClients=1\n")
    fs.write_file(f"{DOCROOT}/index.html", content.static_page())
    fs.write_file(CGI_SCRIPT, content.cgi_script_source())


def register_images(machine) -> None:
    machine.processes.register_image(
        MASTER_IMAGE, lambda cmd: LinuxApacheMaster(), role="apache1-linux")
    machine.processes.register_image(
        CHILD_IMAGE, lambda cmd: LinuxApacheChild(), role="apache2-linux")


class LinuxApacheMaster:
    """The httpd master: fork-and-supervise, POSIX style."""

    image_name = MASTER_IMAGE
    context_class = PosixContext

    def main(self, ctx):
        libc = ctx.libc
        fd = yield from libc.open(CONF_PATH, 0, 0)
        if fd == ERR:
            yield from libc._exit(1)
        conf = Buffer(b"\0" * 256)
        got = yield from libc.read(fd, conf, 256)
        yield from libc.close(fd)
        if got in (0, ERR) or b"Port=80" not in bytes(conf.data):
            yield from libc._exit(1)
        yield from ctx.compute(0.9)

        # "Fork" the single child worker (modelled as a spawn).
        child = ctx.machine.processes.create_from_image(
            CHILD_IMAGE, CHILD_IMAGE, parent=ctx.process)
        if child is None:
            yield from libc._exit(1)

        # Supervision loop: waitpid-with-poll, respawn on death.
        while True:
            alive = yield from libc.kill(child.pid, 0)  # signal 0 = probe
            if alive == ERR or not child.alive:
                status = OutCell()
                yield from libc.waitpid(child.pid, status, 1)  # WNOHANG reap
                yield from libc.usleep(250_000)
                child = ctx.machine.processes.create_from_image(
                    CHILD_IMAGE, CHILD_IMAGE, parent=ctx.process)
                if child is None:
                    yield from libc._exit(1)
            yield from libc.sleep(1)


class LinuxApacheChild:
    """The httpd worker: owns the socket, serves the workload."""

    image_name = CHILD_IMAGE
    context_class = PosixContext

    def main(self, ctx):
        libc = ctx.libc
        ok = yield from libc.access(f"{DOCROOT}/index.html", 4)
        docroot_ok = ok == 0
        yield from libc.getpid()
        yield from ctx.compute(CHILD_STARTUP_TIME)

        transport = ctx.machine.transport
        listener = transport.listen(content.HTTP_PORT, ctx.process)
        if listener is None:
            yield from libc._exit(1)
        while True:
            conn = yield from transport.accept(listener, timeout=None)
            if conn is RESET or conn is TIMED_OUT:
                yield from libc._exit(0)
            request = yield from transport.recv(conn, Side.SERVER,
                                                timeout=60.0)
            if isinstance(request, ProbePing):
                transport.send(conn, Side.SERVER, ProbePong())
                continue
            if request is RESET or request is TIMED_OUT or \
                    not isinstance(request, HttpRequest):
                continue
            if request.is_cgi:
                response = yield from self._serve_cgi(ctx)
            else:
                response = yield from self._serve_static(ctx, request,
                                                         docroot_ok)
            transport.send(conn, Side.SERVER, response)
            yield from libc.usleep(50_000)

    def _serve_static(self, ctx, request, docroot_ok):
        libc = ctx.libc
        if not docroot_ok:
            return HttpResponse(HTTP_NOT_FOUND, b"not found")
        path = DOCROOT + request.path
        stat_cell = OutCell()
        if (yield from libc.stat(path, stat_cell)) == ERR:
            return HttpResponse(HTTP_NOT_FOUND, b"not found")
        size = stat_cell.value["st_size"]
        fd = yield from libc.open(path, 0, 0)
        if fd == ERR:
            return HttpResponse(HTTP_NOT_FOUND, b"not found")
        block_ptr = yield from libc.malloc(size)
        got = yield from libc.read(fd, block_ptr, size)
        yield from libc.close(fd)
        block = ctx.memory(block_ptr)
        if got == ERR or block is None:
            return HttpResponse(HTTP_SERVER_ERROR, b"read failure")
        body = bytes(block.data[:size])
        yield from ctx.compute(STATIC_SERVICE_TIME)
        yield from libc.free(block_ptr)
        return HttpResponse(HTTP_OK, body)

    def _serve_cgi(self, ctx):
        libc = ctx.libc
        fd = yield from libc.open(CGI_SCRIPT, 0, 0)
        if fd == ERR:
            return HttpResponse(HTTP_SERVER_ERROR, b"no cgi script")
        source = Buffer(b"\0" * 512)
        got = yield from libc.read(fd, source, 512)
        yield from libc.close(fd)
        if got in (0, ERR):
            return HttpResponse(HTTP_SERVER_ERROR, b"cgi read failure")
        page = content.cgi_page(bytes(source.data[:got]))
        yield from ctx.compute(CGI_SERVICE_TIME)
        return HttpResponse(HTTP_OK, page)


class LinuxWatchd:
    """watchd on Linux: PID-based death watch + the same liveness probe.

    The NT version's SCM entanglements (the getServiceInfo race, the
    Start-Pending lock) simply do not exist here — restart is kill,
    reap, re-exec."""

    image_name = "watchd"

    def __init__(self, service_name: str = SERVICE_NAME,
                 probe_port: int = content.HTTP_PORT):
        self.service_name = service_name
        self.probe_port = probe_port
        self.restart_count = 0

    def main(self, ctx):
        from ..middleware.base import probe_service, wait_for_exit

        machine = ctx.machine
        supervisor = get_supervisor(machine)
        if not hasattr(machine, "watchd_log"):
            machine.watchd_log = []
        supervisor.start(self.service_name)
        probe_failures = 0
        time_to_probe = 10.0
        while True:
            process = supervisor.pid_of(self.service_name)
            if process is None:
                self.restart_count += 1
                self._log(machine, f"restarting {self.service_name} "
                                   f"(restart #{self.restart_count})")
                yield Sleep(0.5)
                supervisor.start(self.service_name)
                continue
            died = yield from wait_for_exit(process, 5.0)
            if died:
                continue  # loop observes the dead pid and restarts
            time_to_probe -= 5.0
            if time_to_probe > 0:
                continue
            time_to_probe = 10.0
            healthy = yield from probe_service(ctx, self.probe_port)
            if healthy:
                probe_failures = 0
                continue
            probe_failures += 1
            if probe_failures >= 2:
                self._log(machine, f"{self.service_name} unresponsive; "
                                   f"forcing restart")
                supervisor.stop(self.service_name)
                probe_failures = 0

    def _log(self, machine, message):
        from ..middleware.base import MiddlewareLogEntry

        machine.watchd_log.append(
            MiddlewareLogEntry(machine.engine.now, "watchd", message))

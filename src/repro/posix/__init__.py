"""The Linux port (Section 5's ongoing work, preliminary results).

Provides the two system-dependent pieces the paper's port had to
rewrite — a libc dispatch (:mod:`context`) over a libc export table
(:mod:`libc`), and an init-style supervisor (:mod:`initd`) in place of
the SCM — plus the Apache-on-Linux workload and a PID-based watchd.
The DTS core (fault lists, injector, campaign, collector) is reused
without modification.
"""

from .apache_linux import LinuxApacheChild, LinuxApacheMaster, LinuxWatchd
from .context import PosixContext
from .initd import InitSupervisor, get_supervisor
from .libc import LIBC_IMPLEMENTATIONS, LIBC_REGISTRY, injectable_libc_signatures
from .workload import APACHE1_LINUX, APACHE2_LINUX, LinuxWorkloadSpec

__all__ = [
    "LIBC_REGISTRY",
    "LIBC_IMPLEMENTATIONS",
    "injectable_libc_signatures",
    "PosixContext",
    "InitSupervisor",
    "get_supervisor",
    "LinuxApacheMaster",
    "LinuxApacheChild",
    "LinuxWatchd",
    "LinuxWorkloadSpec",
    "APACHE1_LINUX",
    "APACHE2_LINUX",
]

"""The simulated libc export table and implementations (Linux port).

Section 5: *"The DTS tool has already been ported to the Linux
platform with minimal effort.  Only system-dependent Java Native
Interface components needed to be rewritten."*  This module is the
Linux half of that statement: a libc export registry in the same
signature language as KERNEL32's, with implementations mapped onto the
same machine primitives.  Everything above the interception layer —
fault lists, the injector, the campaign flow, the collector — runs
unchanged against it.

POSIX error convention: calls return -1 (``0xFFFFFFFF`` as a raw word)
and set the process's ``errno`` (reusing the last-error slot) instead
of Win32's FALSE/GetLastError."""

from __future__ import annotations

from ..nt.errors import AccessViolation, ProcessExit
from ..nt.kernel32.signatures import FunctionSig, parse_signature
from ..nt.memory import ArgKind, Buffer, OutCell
from ..nt.objects import FileObject

# errno values (asm-generic)
EPERM = 1
ENOENT = 2
EBADF = 9
ENOMEM = 12
EACCES = 13
EFAULT = 14
EINVAL = 22

ERR = 0xFFFFFFFF  # (uint32)-1


_LIBC_API = """
open(pathname:S, flags:F, mode:I)
close(fd:H)
read(fd:H, buf:O, count:Z)
write(fd:H, buf:P, count:Z)
lseek(fd:H, offset:I, whence:I)
unlink(pathname:S)
rename(oldpath:S, newpath:S)
stat(pathname:S, statbuf:O)
fstat(fd:H, statbuf:O)
access(pathname:S, mode:F)
mkdir(pathname:S, mode:I)
rmdir(pathname:S)
chdir(path:S)
getcwd(buf:O, size:Z)
malloc(size:Z)
free(ptr:P)
realloc(ptr:P, size:Z)
calloc(nmemb:Z, size:Z)
usleep(usec:T)
nanosleep(req:P, rem:O?)
sleep(seconds:T)
gettimeofday(tv:O, tz:P?)
time(tloc:O?)
getenv(name:S)
setenv(name:S, value:S, overwrite:B)
unsetenv(name:S)
getpid()
getppid()
fork()
execve(pathname:S, argv:P, envp:P?)
waitpid(pid:I, wstatus:O?, options:F)
kill(pid:I, sig:I)
_exit(status:I)
exit(status:I)
signal(signum:I, handler:P?)
sigaction(signum:I, act:P?, oldact:O?)
pipe(pipefd:O)
dup2(oldfd:H, newfd:I)
fcntl(fd:H, cmd:I, arg:I)
ioctl(fd:H, request:I, argp:P?)
strlen(s:S?)
strcpy(dest:O, src:S)
strncpy(dest:O, src:S, n:Z)
strcmp(s1:S, s2:S)
strcasecmp(s1:S, s2:S)
memset(s:P, c:I, n:Z)
memcpy(dest:P, src:P, n:Z)
fopen(pathname:S, mode:S)
fclose(stream:H)
fread(ptr:O, size:Z, nmemb:Z, stream:H)
fwrite(ptr:P, size:Z, nmemb:Z, stream:H)
fprintf(stream:H, format:S)
fflush(stream:H?)
fgets(s:O, size:Z, stream:H)
printf(format:S)
puts(s:S)
perror(s:S?)
abort()
atexit(function:P)
getuid()
geteuid()
setsid()
umask(mask:I)
gethostname(name:O, len:Z)
uname(buf:O)
sysconf(name:I)
random()
srandom(seed:I)
select(nfds:I, readfds:P?, writefds:P?, exceptfds:P?, timeout:P?)
poll(fds:P, nfds:Z, timeout:T)
"""


def _build_registry() -> dict[str, FunctionSig]:
    registry: dict[str, FunctionSig] = {}
    for line in _LIBC_API.strip().splitlines():
        line = line.strip()
        if not line:
            continue
        name = line.split("(", 1)[0]
        if "(" in line and not line.endswith("()"):
            sig = parse_signature(line, "libc")
        else:
            sig = FunctionSig(name, (), "libc")
        registry[sig.name] = sig
    return registry


LIBC_REGISTRY: dict[str, FunctionSig] = _build_registry()


def injectable_libc_signatures():
    return (sig for sig in LIBC_REGISTRY.values() if sig.injectable)


# ----------------------------------------------------------------------
# Implementations
# ----------------------------------------------------------------------
LIBC_IMPLEMENTATIONS: dict[str, object] = {}


def libc_impl(name: str):
    def register(fn):
        if name in LIBC_IMPLEMENTATIONS:
            raise ValueError(f"duplicate libc implementation for {name}")
        LIBC_IMPLEMENTATIONS[name] = fn
        return fn

    return register


def _fail(frame, errno, ret=ERR):
    frame.process.last_error = errno  # errno shares the last-error slot
    return ret


O_WRONLY = 0x1
O_RDWR = 0x2
O_CREAT = 0x40
O_TRUNC = 0x200


@libc_impl("open")
def libc_open(frame):
    path = frame.string(0)
    flags = frame.uint(1)
    frame.uint(2)
    fs = frame.machine.fs
    writable = bool(flags & (O_WRONLY | O_RDWR))
    if flags & O_CREAT:
        if not fs.exists(path) or flags & O_TRUNC:
            fs.write_file(path, b"")
        data = fs.read_file(path)
    else:
        data = fs.read_file(path)
        if data is None:
            return _fail(frame, ENOENT)
    file_obj = FileObject(path, data or b"", writable=writable,
                          readable=not (flags & O_WRONLY))
    return frame.new_handle(file_obj)


@libc_impl("close")
def libc_close(frame):
    file_obj = frame.handle_object(0, FileObject)
    if file_obj is None:
        return _fail(frame, EBADF)
    if file_obj.writable:
        frame.machine.fs.write_file(file_obj.path, bytes(file_obj.data))
    frame.machine.handles.close(frame.args[0].raw)
    return 0


@libc_impl("read")
def libc_read(frame):
    file_obj = frame.handle_object(0, FileObject)
    if file_obj is None:
        return _fail(frame, EBADF)
    buffer = frame.buffer(1)
    count = frame.uint(2)
    if not file_obj.readable:
        return _fail(frame, EACCES)
    if count > len(buffer.data):
        raise AccessViolation(frame.args[1].raw + len(buffer.data), "write")
    chunk = file_obj.read(count)
    buffer.data[:len(chunk)] = chunk
    for index in range(len(chunk), len(buffer.data)):
        buffer.data[index] = 0
    return len(chunk)


@libc_impl("write")
def libc_write(frame):
    file_obj = frame.handle_object(0, FileObject)
    payload = frame.pointer(1)
    count = frame.uint(2)
    if file_obj is None:
        return _fail(frame, EBADF)
    if not file_obj.writable:
        return _fail(frame, EACCES)
    data = bytes(payload.data) if isinstance(payload, Buffer) else \
        str(payload).encode("latin-1", "replace")
    if count > len(data):
        raise AccessViolation(frame.args[1].raw + len(data), "read")
    return file_obj.write(data[:count])


@libc_impl("access")
def libc_access(frame):
    path = frame.string(0)
    frame.uint(1)
    if not frame.machine.fs.exists(path):
        return _fail(frame, ENOENT)
    return 0


@libc_impl("stat")
def libc_stat(frame):
    path = frame.string(0)
    cell = frame.out_cell(1)
    size = frame.machine.fs.size(path)
    if size is None:
        return _fail(frame, ENOENT)
    cell.value = {"st_size": size, "st_mode": 0o100644}
    return 0


@libc_impl("unlink")
def libc_unlink(frame):
    if not frame.machine.fs.delete(frame.string(0)):
        return _fail(frame, ENOENT)
    return 0


@libc_impl("malloc")
def libc_malloc(frame):
    size = frame.uint(0)
    if size > (1 << 26):
        return _fail(frame, ENOMEM, 0)
    heap = frame.process._default_heap
    if heap is None:
        from ..nt.objects import HeapObject

        heap = HeapObject(f"libc-heap:{frame.process.pid}")
        frame.process._default_heap = heap
        frame.process._default_heap_handle = frame.new_handle(heap)
    block = Buffer(b"\0" * size, label="malloc")
    address = frame.machine.address_space.intern(block)
    heap.allocations.add(address)
    return address


@libc_impl("free")
def libc_free(frame):
    arg = frame.args[0]
    if arg.is_null:
        return 0  # free(NULL) is defined and harmless
    heap = frame.process._default_heap
    if heap is not None and arg.kind is ArgKind.OBJECT and \
            arg.raw in heap.allocations:
        heap.allocations.discard(arg.raw)
        frame.machine.address_space.free(arg.raw)
        return 0
    # glibc detects invalid frees and aborts the process.
    raise AccessViolation(arg.raw, "free")


@libc_impl("usleep")
def libc_usleep(frame):
    from ..sim import Hang, Sleep

    raw = frame.args[0].raw
    if raw == 0xFFFFFFFF:
        yield Hang()
        return 0
    yield Sleep(raw / 1_000_000.0)
    return 0


@libc_impl("sleep")
def libc_sleep(frame):
    from ..sim import Hang, Sleep

    raw = frame.args[0].raw
    if raw == 0xFFFFFFFF:
        yield Hang()
        return 0
    yield Sleep(float(raw))
    return 0


@libc_impl("getpid")
def libc_getpid(frame):
    return frame.process.pid


@libc_impl("getppid")
def libc_getppid(frame):
    parent = frame.process.parent
    return parent.pid if parent is not None else 1


@libc_impl("getenv")
def libc_getenv(frame):
    if frame.args[0].is_null:
        return 0
    value = frame.process.environment.get(frame.string(0))
    if value is None:
        return 0
    from ..nt.memory import CString

    return frame.machine.address_space.intern(CString(value))


@libc_impl("setenv")
def libc_setenv(frame):
    name = frame.string(0)
    value = frame.string(1)
    overwrite = frame.boolean(2)
    if overwrite or name not in frame.process.environment:
        frame.process.environment[name] = value
    return 0


@libc_impl("_exit")
def libc_exit_now(frame):
    raise ProcessExit(frame.uint(0))


@libc_impl("exit")
def libc_exit(frame):
    raise ProcessExit(frame.uint(0))


@libc_impl("abort")
def libc_abort(frame):
    # SIGABRT: an abnormal end, recorded as a crash.
    from ..nt.errors import StructuredException

    raise StructuredException("SIGABRT", status=134)


@libc_impl("strlen")
def libc_strlen(frame):
    arg = frame.args[0]
    if arg.is_null:
        raise AccessViolation(0, "read")  # no SEH guards on Unix
    return len(frame.string(0))


@libc_impl("gettimeofday")
def libc_gettimeofday(frame):
    cell = frame.out_cell(0)
    frame.opt_pointer(1)
    now = frame.machine.engine.now
    cell.value = {"tv_sec": int(now), "tv_usec": int((now % 1) * 1e6)}
    return 0


@libc_impl("time")
def libc_time(frame):
    now = int(frame.machine.engine.now) + 926_000_000  # 1999 epoch-ish
    cell = frame.opt_out_cell(0)
    if cell is not None:
        cell.value = now
    return now


@libc_impl("gethostname")
def libc_gethostname(frame):
    buffer = frame.buffer(0)
    limit = frame.uint(1)
    name = frame.process.environment.get("HOSTNAME", "dtslinux")
    encoded = name.encode("latin-1")[:max(0, limit - 1)]
    buffer.data[:len(encoded)] = encoded
    return 0


@libc_impl("kill")
def libc_kill(frame):
    pid = frame.uint(0)
    sig = frame.uint(1)
    target = frame.machine.processes.find_by_pid(pid)
    if target is None:
        return _fail(frame, EPERM)
    if sig != 0 and target.alive:
        target.terminate(exit_code=128 + (sig & 0x7F))
    return 0


@libc_impl("waitpid")
def libc_waitpid(frame):
    from ..sim import TIMED_OUT, Wait

    pid = frame.uint(0)
    status_cell = frame.opt_out_cell(1)
    options = frame.uint(2)
    target = frame.machine.processes.find_by_pid(pid)
    if target is None:
        return _fail(frame, EPERM)
    if target.alive:
        if options & 1:  # WNOHANG
            return 0
        result = yield Wait(target.exit_event, timeout=None)
    if status_cell is not None:
        status_cell.value = (target.exit_code or 0) & 0xFFFF
    return target.pid

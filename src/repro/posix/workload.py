"""Linux workload specs — plugged into the unchanged DTS core.

These subclasses replace the two genuinely system-dependent seams
(service deployment and the export registry); fault lists, injection,
the campaign flow and the collector all run as-is, which is the whole
point of the paper's "ported with minimal effort" claim.
"""

from __future__ import annotations

from typing import Optional

from ..clients import HttpClient
from ..core.workload import MiddlewareKind, WorkloadSpec
from ..servers import content
from . import apache_linux
from .initd import get_supervisor
from .libc import LIBC_REGISTRY


class LinuxWorkloadSpec(WorkloadSpec):
    """A workload supervised by init(8) instead of the NT SCM."""

    def setup(self, machine) -> None:
        self._install_content(machine.fs)
        self._register_images(machine)
        get_supervisor(machine).register(self.service_name, self.image_name)

    def deploy_middleware(self, machine, kind: MiddlewareKind,
                          watchd_version: int = 3) -> Optional[object]:
        if kind is MiddlewareKind.NONE:
            get_supervisor(machine).start(self.service_name)
            return None
        if kind is MiddlewareKind.MSCS:
            raise ValueError("MSCS does not exist on Linux; the paper "
                             "compares Linux Apache stand-alone vs watchd")
        if not hasattr(machine, "watchd_log"):
            machine.watchd_log = []
        daemon = apache_linux.LinuxWatchd(self.service_name, self.port)
        machine.processes.spawn(daemon, role="watchd")
        return daemon


def _spec(name: str, target_role: str) -> LinuxWorkloadSpec:
    return LinuxWorkloadSpec(
        name=name,
        service_name=apache_linux.SERVICE_NAME,
        image_name=apache_linux.MASTER_IMAGE,
        wait_hint=0.0,  # no SCM, no wait hint
        port=content.HTTP_PORT,
        target_role=target_role,
        install_content=apache_linux.install_content,
        register_images=apache_linux.register_images,
        client_factory=HttpClient,
        registry=LIBC_REGISTRY,
    )


APACHE1_LINUX = _spec("Apache1Linux", "apache1-linux")
APACHE2_LINUX = _spec("Apache2Linux", "apache2-linux")

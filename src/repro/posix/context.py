"""The libc view a simulated Linux program gets of its machine.

Mirrors :class:`repro.nt.context.Win32Context`, but dispatches through
the libc registry.  The *same* interception layer sits in the middle —
which is the paper's portability claim made concrete: the injector,
fault lists and campaign flow run unmodified; only this system-
dependent dispatch (the "JNI component") is new.
"""

from __future__ import annotations

import inspect
from typing import Any

from ..nt.kernel32 import runtime
from ..sim import Sleep
from .libc import LIBC_IMPLEMENTATIONS, LIBC_REGISTRY


class UnknownLibcExportError(AttributeError):
    """A program referenced a function libc does not export."""


_BLOCKING = {name for name, fn in LIBC_IMPLEMENTATIONS.items()
             if inspect.isgeneratorfunction(fn)}


class _LibcProxy:
    __slots__ = ("_ctx",)

    def __init__(self, ctx: "PosixContext"):
        self._ctx = ctx

    def __getattr__(self, name: str):
        sig = LIBC_REGISTRY.get(name)
        if sig is None:
            raise UnknownLibcExportError(f"libc has no export {name!r}")
        ctx = self._ctx

        def call(*args: Any):
            return ctx._invoke(sig, args)

        call.__name__ = name
        return call


class PosixContext:
    """Per-process gateway to the simulated Linux machine."""

    def __init__(self, machine, process):
        self.machine = machine
        self.process = process
        self.libc = _LibcProxy(self)

    @property
    def now(self) -> float:
        return self.machine.engine.now

    def compute(self, seconds: float):
        yield Sleep(seconds * self.machine.cpu_scale)

    def memory(self, address: int):
        return self.machine.address_space.resolve(address)

    def _invoke(self, sig, sem_args):
        if len(sem_args) != len(sig.params):
            raise TypeError(
                f"{sig.name} takes {len(sig.params)} arguments,"
                f" got {len(sem_args)}")
        space = self.machine.address_space
        raw_args = tuple(space.encode(value) for value in sem_args)
        raw_args, override = self.machine.interception.dispatch(
            self.process, sig, raw_args)
        if override is not None:
            if override.delay > 0.0:
                yield Sleep(override.delay)
            if override.skip:
                # errno shares the last-error slot on the Linux port
                self.process.last_error = override.last_error
                return self.machine.interception.dispatch_return(
                    self.process, sig, override.result)
        decoded = [
            space.decode(raw, spec.ptype.pointer_like)
            for raw, spec in zip(raw_args, sig.params)
        ]
        frame = runtime.Frame(self.machine, self.process, sig, decoded)
        impl = LIBC_IMPLEMENTATIONS.get(sig.name)
        if impl is None:
            result = runtime.generic_implementation(frame)
        elif sig.name in _BLOCKING:
            result = yield from impl(frame)
        else:
            result = impl(frame)
        return self.machine.interception.dispatch_return(
            self.process, sig, result)

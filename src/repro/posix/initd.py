"""A minimal init-style service supervisor for the Linux port.

Linux has no Service Control Manager; daemons are started by init
scripts and tracked by PID.  This supervisor provides just that —
start / stop / status by name, no state machine, no database lock —
which is itself an experimental contrast to the NT SCM: the slow
Start-Pending restart pathology of Figure 4 has no Linux equivalent.
"""

from __future__ import annotations

from typing import Callable, Optional


class InitService:
    """One registered daemon."""

    def __init__(self, name: str, image_name: str):
        self.name = name
        self.image_name = image_name
        self.process = None
        self.start_count = 0

    @property
    def running(self) -> bool:
        return self.process is not None and self.process.alive

    def __repr__(self) -> str:
        state = "running" if self.running else "stopped"
        return f"<InitService {self.name} {state}>"


class InitSupervisor:
    """The machine's init(8) stand-in."""

    def __init__(self, machine):
        self.machine = machine
        self.services: dict[str, InitService] = {}

    def register(self, name: str, image_name: str) -> InitService:
        if name in self.services:
            raise ValueError(f"service {name!r} already registered")
        service = InitService(name, image_name)
        self.services[name] = service
        return service

    def start(self, name: str) -> bool:
        """Start a daemon; returns False if unknown or already running."""
        service = self.services.get(name)
        if service is None or service.running:
            return False
        process = self.machine.processes.create_from_image(
            service.image_name, command_line=service.image_name)
        if process is None:
            return False
        service.process = process
        service.start_count += 1
        return True

    def stop(self, name: str) -> bool:
        service = self.services.get(name)
        if service is None or not service.running:
            return False
        service.process.terminate(exit_code=0)
        return True

    def status(self, name: str) -> Optional[bool]:
        """True running / False stopped / None unknown."""
        service = self.services.get(name)
        return None if service is None else service.running

    def pid_of(self, name: str):
        service = self.services.get(name)
        if service is None or not service.running:
            return None
        return service.process


def get_supervisor(machine) -> InitSupervisor:
    """The machine's supervisor, created on first use (Linux machines
    are ordinary :class:`Machine` instances with this attached)."""
    supervisor = getattr(machine, "init_supervisor", None)
    if supervisor is None:
        supervisor = InitSupervisor(machine)
        machine.init_supervisor = supervisor
    return supervisor

"""Concurrent multi-client load workloads (Figure 4 at scale).

``repro.load`` drives N simulated client processes — each wrapping the
workload's real synthetic client — against Apache/IIS/SQL Server,
optionally under fault injection, with closed-loop (fixed population,
think time) or open-loop (fixed arrival rate) arrivals.  Importing
this package registers the load-result store codec, so run stores
containing load entries deserialize correctly.
"""

from .campaign import (
    LoadExecution,
    LoadTask,
    plan_load_tasks,
    run_load_tasks,
)
from .client import LoadClient
from .result import ClientStats, LoadRunResult
from .runner import execute_load_run, resolve_workload
from .spec import ArrivalMode, LoadSpec

__all__ = [
    "ArrivalMode",
    "ClientStats",
    "LoadClient",
    "LoadExecution",
    "LoadRunResult",
    "LoadSpec",
    "LoadTask",
    "execute_load_run",
    "plan_load_tasks",
    "resolve_workload",
    "run_load_tasks",
]

"""The load-client wrapper program.

Each simulated load client is one NT process wrapping the workload's
own synthetic client (``HttpClient``/``SqlClient``/a plugin client):
it waits out its arrival offset, then runs the inner client's ``main``
once per cycle with think time between cycles, accumulating every
cycle's :class:`~repro.clients.record.ClientRecord`.

Reusing the real client programs — rather than a synthetic
request-generator — means loaded runs exercise the exact retry /
timeout / verification discipline of Section 4, connection hygiene
included.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..clients.record import ClientRecord
from ..sim import Sleep


class LoadClient:
    """loadclient.exe: one member of the simulated client population."""

    image_name = "loadclient.exe"

    def __init__(self, client_id: int, factory: Callable,
                 cycles: int = 1, think_time: float = 0.0,
                 start_delay: float = 0.0):
        self.client_id = client_id
        self.factory = factory
        self.cycles = cycles
        self.think_time = think_time
        self.start_delay = start_delay
        self.records: list[ClientRecord] = []
        self.arrived_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    def main(self, ctx):
        if self.start_delay > 0:
            yield Sleep(self.start_delay)
        self.arrived_at = ctx.now
        for cycle in range(self.cycles):
            if cycle and self.think_time > 0:
                yield Sleep(self.think_time)
            inner = self.factory()
            yield from inner.main(ctx)
            self.records.append(inner.record)
        self.finished_at = ctx.now

    @property
    def completed(self) -> bool:
        return self.finished_at is not None

    def __repr__(self) -> str:
        state = "done" if self.completed else "running"
        return f"<LoadClient #{self.client_id} {state}>"

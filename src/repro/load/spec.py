"""Load workload specifications.

A :class:`LoadSpec` describes one *loaded* configuration: N simulated
client processes driving a workload's server (optionally under
injection), with either **closed-loop** arrivals (a fixed population of
clients, each issuing ``iterations`` request cycles separated by think
time — the classic benchmark client model) or **open-loop** arrivals
(clients arrive at a fixed rate and issue one cycle each, regardless of
how the earlier arrivals are faring — the model that exposes queueing
collapse, cf. "open versus closed" workload-generator folklore).

Everything in the spec participates in the store fingerprint, so load
results checkpoint into the same resumable JSONL stores as injection
runs.
"""

from __future__ import annotations

import enum
import hashlib
import json
from typing import Optional

from ..core.store import STORE_FORMAT, fault_from_dict, fault_key_str, fault_to_dict
from ..core.workload import MiddlewareKind
from ..sim import derive_seed

DEFAULT_THINK_TIME = 5.0
DEFAULT_STAGGER = 0.25
DEFAULT_ARRIVAL_RATE = 2.0


class ArrivalMode(enum.Enum):
    """How client processes enter the system."""

    CLOSED = "closed"
    OPEN = "open"

    @classmethod
    def parse(cls, value) -> "ArrivalMode":
        if isinstance(value, cls):
            return value
        return cls(str(value).lower())


class LoadSpec:
    """One multi-client load configuration."""

    def __init__(self, workload: str,
                 middleware: MiddlewareKind = MiddlewareKind.NONE,
                 clients: int = 10,
                 mode=ArrivalMode.CLOSED,
                 iterations: int = 1,
                 think_time: float = DEFAULT_THINK_TIME,
                 stagger: float = DEFAULT_STAGGER,
                 arrival_rate: float = DEFAULT_ARRIVAL_RATE,
                 fault=None):
        if clients < 1:
            raise ValueError(f"clients must be >= 1, got {clients}")
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        if think_time < 0 or stagger < 0:
            raise ValueError("think_time and stagger must be >= 0")
        if arrival_rate <= 0:
            raise ValueError(f"arrival_rate must be > 0, got {arrival_rate}")
        self.workload = workload
        self.middleware = MiddlewareKind(middleware)
        self.clients = clients
        self.mode = ArrivalMode.parse(mode)
        self.iterations = iterations
        self.think_time = think_time
        self.stagger = stagger
        self.arrival_rate = arrival_rate
        self.fault = fault

    # ------------------------------------------------------------------
    def arrival_time(self, client_index: int) -> float:
        """Virtual seconds (after server-up) until this client starts."""
        if self.mode is ArrivalMode.OPEN:
            return client_index / self.arrival_rate
        return client_index * self.stagger

    def cycles_for(self, client_index: int) -> int:
        """Open-loop arrivals issue exactly one cycle each."""
        return 1 if self.mode is ArrivalMode.OPEN else self.iterations

    def run_horizon(self, client_timeout: float) -> float:
        """Upper bound on the virtual time the client phase may take.

        Generous on purpose: virtual seconds are nearly free when no
        events are scheduled in them, and a load run must never cut off
        a slow-but-progressing client population.
        """
        last_arrival = self.arrival_time(self.clients - 1)
        worst_cycles = 1 if self.mode is ArrivalMode.OPEN else self.iterations
        return last_arrival + worst_cycles * client_timeout

    # ------------------------------------------------------------------
    # Identity: seeds, store keys, fingerprints
    # ------------------------------------------------------------------
    def seed(self, base_seed: int, watchd_version: int, rep: int) -> int:
        return derive_seed(
            base_seed, "load", self.workload, self.middleware.value,
            watchd_version, self.clients, self.mode.value, self.iterations,
            self.think_time, self.stagger, self.arrival_rate,
            fault_key_str(self.fault), rep)

    def key(self, rep: int) -> str:
        """Store key for one repetition of this spec."""
        return f"load:{fault_key_str(self.fault)}:rep{rep}"

    def fingerprint(self, config) -> str:
        """Store fingerprint: every parameter shaping a load run."""
        payload = {
            "format": STORE_FORMAT,
            "mechanism": "load",
            "workload": self.workload,
            "middleware": self.middleware.value,
            "clients": self.clients,
            "mode": self.mode.value,
            "iterations": self.iterations,
            "think_time": self.think_time,
            "stagger": self.stagger,
            "arrival_rate": self.arrival_rate,
            "base_seed": config.base_seed,
            "server_up_timeout": config.server_up_timeout,
            "client_timeout": config.client_timeout,
            "watchd_version": config.watchd_version,
            "cpu_mhz": config.cpu_mhz,
            "scm_lock_enabled": config.scm_lock_enabled,
        }
        digest = hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode("ascii"))
        return digest.hexdigest()[:16]

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "middleware": self.middleware.value,
            "clients": self.clients,
            "mode": self.mode.value,
            "iterations": self.iterations,
            "think_time": self.think_time,
            "stagger": self.stagger,
            "arrival_rate": self.arrival_rate,
            "fault": fault_to_dict(self.fault),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LoadSpec":
        return cls(
            workload=data["workload"],
            middleware=MiddlewareKind(data["middleware"]),
            clients=data["clients"],
            mode=ArrivalMode(data["mode"]),
            iterations=data["iterations"],
            think_time=data["think_time"],
            stagger=data["stagger"],
            arrival_rate=data["arrival_rate"],
            fault=fault_from_dict(data["fault"]),
        )

    def replace(self, **changes) -> "LoadSpec":
        """A copy with some fields swapped (sweeps vary ``clients``)."""
        data = dict(workload=self.workload, middleware=self.middleware,
                    clients=self.clients, mode=self.mode,
                    iterations=self.iterations, think_time=self.think_time,
                    stagger=self.stagger, arrival_rate=self.arrival_rate,
                    fault=self.fault)
        data.update(changes)
        return LoadSpec(**data)

    def __repr__(self) -> str:
        fault = f" fault={fault_key_str(self.fault)}" if self.fault else ""
        return (f"<LoadSpec {self.workload}/{self.middleware.value} "
                f"{self.clients} clients {self.mode.value}"
                f" x{self.iterations}{fault}>")

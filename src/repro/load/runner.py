"""Execution of a single multi-client load run.

The shape mirrors :func:`repro.core.runner.execute_run` — boot a fresh
machine, arm the fault, deploy the server (optionally under
middleware), wait for it to listen — but instead of one synthetic
client the run spawns a whole client population with staggered
arrivals and lets it drain (or hit the horizon).  Shutdown follows the
same discipline: monitoring stops first, the DTS shutdown event is
signalled, and connection hygiene is asserted before the machine is
torn down, so a retry path that leaks connections fails a load run
loudly at any client count.
"""

from __future__ import annotations

from typing import Optional

from ..nt.machine import Machine
from ..core.runner import RunConfig, _graceful_shutdown, arm_fault
from ..core.workload import WORKLOADS, WorkloadSpec
from ..trace import TraceLevel, Tracer
from .client import LoadClient
from .result import ClientStats, LoadRunResult
from .spec import LoadSpec

_POLL_STEP = 0.5
# Virtual seconds per engine burst while the client population drains.
# Coarser than execute_run's 2.0s: with 100 clients in flight the
# alive-scan between bursts is the overhead worth amortizing.
_DRAIN_STEP = 5.0


def execute_load_run(spec: LoadSpec, rep: int = 0,
                     config: Optional[RunConfig] = None) -> LoadRunResult:
    """Run one repetition of a load spec and return the result."""
    config = config or RunConfig()
    workload = resolve_workload(spec.workload)
    # Same tracing contract as execute_run: a run traced at any level
    # behaves identically to an untraced one (the differential engine
    # oracle leans on full-level load-run traces).
    level = TraceLevel.parse(config.trace_level)
    tracer = Tracer(level) if level is not TraceLevel.OFF else None
    machine = Machine(
        seed=spec.seed(config.base_seed, config.watchd_version, rep),
        cpu_mhz=config.cpu_mhz,
        keep_full_trace=config.keep_full_trace,
        scm_lock_enabled=config.scm_lock_enabled,
        tracer=tracer)
    workload.setup(machine)

    injector = arm_fault(machine, workload, spec.fault)
    workload.deploy_middleware(machine, spec.middleware,
                               watchd_version=config.watchd_version)

    # --- Wait for the server to be up ---------------------------------
    deadline = config.server_up_timeout
    while machine.now < deadline and \
            not machine.transport.is_listening(workload.port):
        machine.run(until=min(machine.now + _POLL_STEP, deadline))
    server_came_up = machine.transport.is_listening(workload.port)

    # --- Release the client population ---------------------------------
    # All clients are spawned up front with their arrival offset baked
    # into the program (a Sleep), so arrivals cost no engine polling.
    load_clients = [
        LoadClient(client_id=index,
                   factory=workload.make_client,
                   cycles=spec.cycles_for(index),
                   think_time=spec.think_time,
                   start_delay=spec.arrival_time(index))
        for index in range(spec.clients)
    ]
    processes = [machine.processes.spawn(client, role="load-client")
                 for client in load_clients]

    horizon = machine.now + spec.run_horizon(config.client_timeout)
    while machine.now < horizon and \
            any(process.alive for process in processes):
        machine.run(until=min(machine.now + _DRAIN_STEP, horizon))

    # --- Workload termination -------------------------------------------
    for role in ("mscs", "watchd"):
        for process in machine.processes.processes_with_role(role):
            if process.alive:
                process.terminate(exit_code=0)
    # Clients still running at the horizon are cut off, not leakers.
    for process in processes:
        if process.alive:
            process.terminate(exit_code=1)
    _graceful_shutdown(machine)

    duration = machine.now
    engine_events = machine.engine.events_processed
    clients = [
        ClientStats(client_id=client.client_id,
                    arrived_at=client.arrived_at,
                    finished_at=client.finished_at,
                    completed=client.completed,
                    cycles=list(client.records))
        for client in load_clients
    ]
    machine.check_connection_hygiene()
    machine.shutdown()
    result = LoadRunResult(spec=spec, rep=rep,
                         watchd_version=config.watchd_version,
                         server_came_up=server_came_up,
                         duration=duration,
                         engine_events=engine_events,
                         clients=clients,
                         fault_activated=injector.fired
                         if injector is not None else False,
                         fault_noop=injector.was_noop
                         if injector is not None else False)
    if tracer is not None:
        result.trace = tuple(tracer.events)
        result.trace_level = level
    return result


def resolve_workload(name: str) -> WorkloadSpec:
    """Find a workload by registry name (load specs store the name so
    they can cross process-pool boundaries)."""
    try:
        return WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS))
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None

"""Load-run results and their store serialization.

A :class:`LoadRunResult` is the load-generator's analogue of
:class:`~repro.core.collector.RunResult`: per-client request records
with timing, plus run-level facts (server up, duration, engine event
count).  It registers a store codec so load runs checkpoint into the
same JSONL run stores as injection runs, keyed
``load:<fault key>:rep<N>``.
"""

from __future__ import annotations

from typing import Optional

from ..analysis.stats import MeanCI, mean_ci95
from ..clients.record import ClientRecord
from ..core.store import (
    client_record_from_dict,
    client_record_to_dict,
    fault_from_dict,
    fault_to_dict,
    register_result_codec,
)
from ..trace import TraceLevel
from .spec import ArrivalMode, LoadSpec


class ClientStats:
    """Everything one load client observed."""

    __slots__ = ("client_id", "arrived_at", "finished_at", "completed",
                 "cycles")

    def __init__(self, client_id: int, arrived_at: Optional[float],
                 finished_at: Optional[float], completed: bool,
                 cycles: list[ClientRecord]):
        self.client_id = client_id
        self.arrived_at = arrived_at
        self.finished_at = finished_at
        self.completed = completed
        self.cycles = cycles

    @property
    def requests(self):
        """All request records across cycles, in issue order."""
        return [request for cycle in self.cycles
                for request in cycle.requests]

    @property
    def latencies(self) -> list[float]:
        return [request.latency for request in self.requests
                if request.latency is not None]

    @property
    def succeeded_requests(self) -> int:
        return sum(1 for request in self.requests if request.succeeded)

    @property
    def total_retries(self) -> int:
        return sum(request.retries_used for request in self.requests)

    def __repr__(self) -> str:
        state = "done" if self.completed else "cut off"
        return (f"<ClientStats #{self.client_id} "
                f"{len(self.requests)} requests {state}>")


class LoadRunResult:
    """One completed load run (one repetition of a :class:`LoadSpec`)."""

    # Store/trace-CLI compatibility: load runs are *stored* untraced
    # (the codec below never serializes traces).  A traced in-memory
    # run (``RunConfig(trace_level=...)``) shadows these class defaults
    # with instance attributes.
    trace = ()
    trace_level = TraceLevel.OFF

    def __init__(self, spec: LoadSpec, rep: int, watchd_version: int,
                 server_came_up: bool, duration: float,
                 engine_events: int, clients: list[ClientStats],
                 fault_activated: bool = False, fault_noop: bool = False):
        self.spec = spec
        self.rep = rep
        self.watchd_version = watchd_version
        self.server_came_up = server_came_up
        self.duration = duration
        self.engine_events = engine_events
        self.clients = clients
        # Whether the armed fault's interception hook ever fired during
        # this run, and whether every firing was a no-op substitution
        # (injected value == the real one).  Always False for fault-free
        # load runs.
        self.fault_activated = fault_activated
        self.fault_noop = fault_noop

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def completed_clients(self) -> int:
        return sum(1 for client in self.clients if client.completed)

    @property
    def request_count(self) -> int:
        return sum(len(client.requests) for client in self.clients)

    @property
    def succeeded_requests(self) -> int:
        return sum(client.succeeded_requests for client in self.clients)

    @property
    def success_fraction(self) -> float:
        total = self.request_count
        return self.succeeded_requests / total if total else 0.0

    @property
    def total_retries(self) -> int:
        return sum(client.total_retries for client in self.clients)

    def all_latencies(self) -> list[float]:
        """Per-request latencies across all clients, in client order."""
        return [latency for client in self.clients
                for latency in client.latencies]

    def mean_latency(self) -> Optional[float]:
        latencies = self.all_latencies()
        return sum(latencies) / len(latencies) if latencies else None

    def latency_ci(self) -> Optional[MeanCI]:
        return mean_ci95(self.all_latencies())

    def __repr__(self) -> str:
        return (f"<LoadRunResult {self.spec.workload}"
                f"/{self.spec.middleware.value} clients={self.spec.clients} "
                f"rep={self.rep} ok={self.success_fraction:.0%}>")


# ----------------------------------------------------------------------
# Store codec
# ----------------------------------------------------------------------
def load_result_to_dict(result: LoadRunResult) -> dict:
    return {
        "spec": result.spec.to_dict(),
        "rep": result.rep,
        "watchd_version": result.watchd_version,
        "server_came_up": result.server_came_up,
        "duration": result.duration,
        "engine_events": result.engine_events,
        "fault_activated": result.fault_activated,
        "fault_noop": result.fault_noop,
        "clients": [
            {"client_id": client.client_id,
             "arrived_at": client.arrived_at,
             "finished_at": client.finished_at,
             "completed": client.completed,
             "cycles": [client_record_to_dict(cycle)
                        for cycle in client.cycles]}
            for client in result.clients
        ],
    }


def load_result_from_dict(data: dict) -> LoadRunResult:
    clients = [
        ClientStats(
            client_id=entry["client_id"],
            arrived_at=entry["arrived_at"],
            finished_at=entry["finished_at"],
            completed=entry["completed"],
            cycles=[client_record_from_dict(cycle)
                    for cycle in entry["cycles"]],
        )
        for entry in data["clients"]
    ]
    return LoadRunResult(
        spec=LoadSpec.from_dict(data["spec"]),
        rep=data["rep"],
        watchd_version=data["watchd_version"],
        server_came_up=data["server_came_up"],
        duration=data["duration"],
        engine_events=data["engine_events"],
        clients=clients,
        # Absent in stores written before activation tracking existed.
        fault_activated=data.get("fault_activated", False),
        fault_noop=data.get("fault_noop", False),
    )


register_result_codec("load", LoadRunResult,
                      load_result_to_dict, load_result_from_dict)

__all__ = [
    "ArrivalMode",
    "ClientStats",
    "LoadRunResult",
    "fault_from_dict",
    "fault_to_dict",
    "load_result_from_dict",
    "load_result_to_dict",
]

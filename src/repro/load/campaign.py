"""Load campaigns: repetitions and client-count sweeps over a LoadSpec.

Same determinism contract as :mod:`repro.core.exec`: every load run
boots a fresh machine seeded from ``(base seed, spec identity, rep)``
and shares nothing with any other run, so a campaign is embarrassingly
parallel per run and the process-pool path produces byte-identical
store files to the serial path, whatever the worker count.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
from typing import Optional, Sequence

from ..core.exec import SafeProgress
from ..core.runner import RunConfig
from .result import LoadRunResult
from .runner import execute_load_run
from .spec import LoadSpec


class LoadTask:
    """One (spec, rep) cell of a load campaign."""

    __slots__ = ("spec", "rep")

    def __init__(self, spec: LoadSpec, rep: int):
        self.spec = spec
        self.rep = rep

    def __repr__(self) -> str:
        return f"<LoadTask {self.spec!r} rep={self.rep}>"


def plan_load_tasks(spec: LoadSpec, reps: int = 1,
                    sweep: Optional[Sequence[int]] = None) -> list[LoadTask]:
    """The task grid: every swept client count times every repetition.

    With no sweep the grid is just ``reps`` repetitions of the spec
    itself.  Sweep counts are run in the order given (canonical order
    for the store and the progress display).
    """
    if reps < 1:
        raise ValueError(f"reps must be >= 1, got {reps}")
    specs = ([spec.replace(clients=count) for count in sweep]
             if sweep else [spec])
    return [LoadTask(variant, rep)
            for variant in specs for rep in range(reps)]


def _run_load_chunk(tasks: list[LoadTask],
                    config: RunConfig) -> list[LoadRunResult]:
    """Worker body: execute one chunk of load tasks in a pool process."""
    return [execute_load_run(task.spec, task.rep, config)
            for task in tasks]


class LoadExecution:
    """What :func:`run_load_tasks` hands back to the CLI."""

    __slots__ = ("runs", "total", "executed_count", "cached_count")

    def __init__(self):
        self.runs: list[LoadRunResult] = []
        self.total = 0
        self.executed_count = 0
        self.cached_count = 0


def run_load_tasks(tasks: Sequence[LoadTask], config: RunConfig,
                   jobs: int = 1, store=None,
                   progress=None) -> LoadExecution:
    """Execute a load-task grid, checkpointing as runs complete.

    Results come back in task order regardless of ``jobs``; completed
    runs are checkpointed to ``store`` (when given) before the progress
    callback fires, and cached runs are served without re-execution.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    execution = LoadExecution()
    execution.total = len(tasks)
    safe_progress = SafeProgress(progress)
    done = 0

    # --- Serve cached runs, keeping slots for the rest ------------------
    slots: list[Optional[LoadRunResult]] = [None] * len(tasks)
    pending: list[tuple[int, LoadTask]] = []
    for index, task in enumerate(tasks):
        cached = (store.get(task.spec.fingerprint(config), task.spec.key(task.rep))
                  if store is not None else None)
        if cached is not None:
            slots[index] = cached
            execution.cached_count += 1
            done += 1
            safe_progress(done, execution.total, cached)
        else:
            pending.append((index, task))

    def record(index: int, task: LoadTask, run: LoadRunResult) -> None:
        nonlocal done
        if store is not None:
            store.put(task.spec.fingerprint(config), task.spec.key(task.rep),
                      run)
        slots[index] = run
        execution.executed_count += 1
        done += 1
        safe_progress(done, execution.total, run)

    if jobs == 1 or len(pending) <= 1:
        for index, task in pending:
            record(index, task, execute_load_run(task.spec, task.rep, config))
    else:
        _run_pool(pending, config, jobs, record)

    execution.runs = [run for run in slots if run is not None]
    return execution


def _run_pool(pending, config: RunConfig, jobs: int, record) -> None:
    """Chunked process-pool dispatch, results in submission order."""
    context = None
    if "fork" in multiprocessing.get_all_start_methods():
        context = multiprocessing.get_context("fork")
    chunk_size = max(1, len(pending) // (jobs * 4) + 1)
    chunks = [pending[start:start + chunk_size]
              for start in range(0, len(pending), chunk_size)]
    with concurrent.futures.ProcessPoolExecutor(
            max_workers=jobs, mp_context=context) as pool:
        futures = [
            pool.submit(_run_load_chunk, [task for _, task in chunk], config)
            for chunk in chunks
        ]
        for chunk, future in zip(chunks, futures):
            for (index, task), run in zip(chunk, future.result()):
                record(index, task, run)

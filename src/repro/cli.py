"""Command-line interface — the control surface of the tool.

The original DTS is "controlled via a graphical interface and a set of
configuration files"; this CLI is the headless equivalent, driving the
same configuration files and campaign machinery:

    python -m repro faultlist -o faults.lst
    python -m repro profile --workload IIS --middleware watchd
    python -m repro inject --workload SQL --fault "ReadFileEx 2 zero 1"
    python -m repro run --config dts.ini
    python -m repro reproduce --write-report EXPERIMENTS.md
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Optional, Sequence

from .analysis.experiment import ExperimentSuite
from .analysis.figures import OutcomeDistribution
from .analysis.report import generate_experiments_report, shape_checks
from .core.campaign import Campaign, profile_workload
from .core.config import DtsConfig
from .core.faultlist import generate_fault_list, write_fault_list_file
from .core.faults import FaultSpec
from .core.runner import RunConfig, execute_run
from .core.workload import WORKLOADS, MiddlewareKind, get_workload
from .load.spec import (
    DEFAULT_ARRIVAL_RATE,
    DEFAULT_STAGGER,
    DEFAULT_THINK_TIME,
)
from .trace import (
    TRACE_LEVEL_NAMES,
    TraceLevel,
    derive_metrics,
    render_diff,
    render_metrics,
    render_timeline,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DTS (Dependability Test Suite) reproduction — "
                    "KERNEL32 parameter-corruption fault injection.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    faultlist = commands.add_parser(
        "faultlist", help="generate a fault-list file")
    faultlist.add_argument("-o", "--output", required=True,
                           help="path to write the fault list to")
    faultlist.add_argument("--functions", default=None,
                           help="comma-separated export names "
                                "(default: all 551 injectable)")

    profile = commands.add_parser(
        "profile", help="fault-free profiling run (Table 1 counts)")
    _add_target_arguments(profile)

    inject = commands.add_parser(
        "inject", help="run a single fault injection")
    _add_target_arguments(inject)
    inject.add_argument("--fault", required=True,
                        help="fault-list line: '<function> <param> "
                             "<zero|ones|flip> <invocation>'")

    run = commands.add_parser(
        "run", help="run a whole workload set from a config file")
    run.add_argument("--config", required=True,
                     help="path to the DTS main configuration file")
    run.add_argument("--functions", default=None,
                     help="restrict to a comma-separated function subset")
    run.add_argument("--fault-family", default="param",
                     choices=("param", "return", "io", "resource", "all"),
                     help="fault family to inject: parameter corruption "
                          "(default), return-value corruption, sustained "
                          "I/O-path faults, resource exhaustion, or "
                          "'all' for a family-by-family comparison")
    _add_execution_arguments(run)
    run.add_argument("--prune-equivalent", default=None, metavar="FILE",
                     help="equivalence manifest (repro lint "
                          "--emit-equivalence): statically equivalent "
                          "faults run once and the census is expanded "
                          "from class representatives")
    run.add_argument("--resume", action="store_true",
                     help="reuse runs already checkpointed in the store "
                          "and execute only the missing ones")

    reproduce = commands.add_parser(
        "reproduce", help="regenerate every table and figure of the paper")
    reproduce.add_argument("--write-report", metavar="PATH", default=None,
                           help="also write the EXPERIMENTS.md report here")
    _add_execution_arguments(reproduce)

    trace = commands.add_parser(
        "trace", help="inspect stored run traces: timeline, derived "
                      "metrics, or an event-by-event diff of two runs")
    trace.add_argument("store", help="path to a JSONL run store")
    trace.add_argument("key", nargs="?", default=None,
                       help="fault key, e.g. 'param:CreateFileA:0:zero:1',"
                            " 'return:ReadFile:ones:2' or 'profile' "
                            "(omit to list the store's traced runs)")
    trace.add_argument("--fingerprint", default=None, metavar="PREFIX",
                       help="campaign fingerprint (prefix) to "
                            "disambiguate stores holding several "
                            "campaigns")
    trace.add_argument("--diff", default=None, metavar="KEY",
                       help="diff this run's trace against KEY's, "
                            "event by event")
    trace.add_argument("--metrics", action="store_true",
                       help="show derived detection/restart metrics "
                            "instead of the timeline")

    load = commands.add_parser(
        "load", help="concurrent multi-client load run (Figure 4 at "
                     "scale): N simulated clients against one workload, "
                     "optionally under injection")
    load.add_argument("--workload", required=True,
                      help="workload name or alias: apache, apache2, iis, "
                           "sql (case-insensitive), or a registry name")
    load.add_argument("--middleware", default="none",
                      help="none, mscs, watchd, or watchd1/2/3 "
                           "(the suffix selects the watchd version)")
    load.add_argument("--watchd-version", type=int, default=None,
                      choices=(1, 2, 3),
                      help="watchd version when --middleware is 'watchd' "
                           "(default 3; watchdN implies N)")
    load.add_argument("--clients", type=int, default=10, metavar="N",
                      help="size of the client population (default 10)")
    load.add_argument("--sweep", default=None, metavar="N,N,...",
                      help="comma-separated client counts to sweep "
                           "(overrides --clients)")
    load.add_argument("--mode", choices=("closed", "open"),
                      default="closed",
                      help="closed: fixed population with think time; "
                           "open: fixed arrival rate, one cycle each")
    load.add_argument("--iterations", type=int, default=1,
                      help="request cycles per closed-loop client")
    load.add_argument("--think-time", type=float,
                      default=DEFAULT_THINK_TIME, metavar="SECONDS",
                      help="closed-loop think time between cycles")
    load.add_argument("--stagger", type=float, default=DEFAULT_STAGGER,
                      metavar="SECONDS",
                      help="closed-loop arrival spacing between clients")
    load.add_argument("--arrival-rate", type=float,
                      default=DEFAULT_ARRIVAL_RATE, metavar="PER_SECOND",
                      help="open-loop client arrival rate")
    load.add_argument("--reps", type=int, default=1,
                      help="independent repetitions per configuration "
                           "(each re-seeded; >=2 gives real error bars)")
    load.add_argument("--fault", default=None,
                      help="arm a fault for every run: '<function> "
                           "<param> <zero|ones|flip> <invocation>' or "
                           "'<function> <zero|ones|flip> <invocation>' "
                           "for a return-value fault")
    load.add_argument("--seed", type=int, default=2000)
    _add_execution_arguments(load)
    load.add_argument("--resume", action="store_true",
                      help="reuse runs already checkpointed in the store")

    lint = commands.add_parser(
        "lint", help="DTS-aware static analysis (signature conformance, "
                     "unchecked returns, handle leaks, sim hangs, "
                     "yield-point races, determinism, fault-space "
                     "validity)")
    lint.add_argument("paths", nargs="*", default=None, metavar="PATH",
                      help="files or directories to analyse "
                           "(default: src examples)")
    lint.add_argument("--format", choices=("text", "json", "sarif"),
                      default="text",
                      dest="output_format", help="report format")
    lint.add_argument("--baseline", default=None, metavar="FILE",
                      help="baseline of accepted findings (default: "
                           "lint-baseline.json when present; 'none' "
                           "disables)")
    lint.add_argument("--write-baseline", default=None, metavar="FILE",
                      help="write every current finding to FILE as the new "
                           "baseline and exit 0")
    lint.add_argument("--update-baseline", action="store_true",
                      help="regenerate the active baseline file in place "
                           "(deterministic: sorted keys, stable counts)")
    lint.add_argument("--jobs", type=int, default=1, metavar="N",
                      help="analyse files through a process pool of N "
                           "workers (default: 1, serial)")
    lint.add_argument("--rules", "--select", default=None, dest="rules",
                      help="comma-separated rule names or families to run "
                           "(e.g. --select valueflow)")
    lint.add_argument("--census-diff", action="store_true",
                      help="reconcile the static activatable-fault "
                           "prediction against dynamic evidence (fresh "
                           "profile runs, or --census-store); exits "
                           "non-zero on unexplained activations")
    lint.add_argument("--census-store", action="append", default=None,
                      metavar="PATH",
                      help="JSONL run store(s) to read dynamic census "
                           "evidence from instead of executing profile "
                           "runs (repeatable)")
    lint.add_argument("--emit-equivalence", default=None, metavar="FILE",
                      help="write the static fault-equivalence manifest "
                           "to FILE (consumed by repro run "
                           "--prune-equivalent) and exit")
    lint.add_argument("--equiv-check", action="store_true",
                      help="dynamic oracle for the equivalence manifest: "
                           "execute every member of sampled classes and "
                           "fail on outcome divergence")
    lint.add_argument("--equiv-sample", type=int, default=None,
                      metavar="N",
                      help="classes sampled by --equiv-check "
                           "(default: 6; 0 checks every class)")

    serve = commands.add_parser(
        "serve", help="campaign-as-a-service daemon: accept campaign/"
                      "load specs over HTTP+JSON, queue them onto a "
                      "shared process pool and a sharded run store")
    serve.add_argument("--store", required=True, metavar="DIR",
                       help="sharded run store directory (created on "
                            "first submission; restarting on an "
                            "existing one resumes its checkpoints)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8642,
                       help="bind port; 0 picks an ephemeral port "
                            "(default: 8642)")
    serve.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="process-pool workers shared by all jobs "
                            "(default: 1, serial)")
    serve.add_argument("--segments", type=int, default=None, metavar="N",
                       help="segment files in a newly created store "
                            "(default: 8; existing stores keep theirs)")
    serve.add_argument("--no-durable", action="store_true",
                       help="skip the per-append fsync (faster, but a "
                            "power loss may drop recent runs)")
    serve.add_argument("--verbose", action="store_true",
                       help="log each HTTP request to stderr")
    return parser


def _add_execution_arguments(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--jobs", type=int, default=None, metavar="N",
                     help="run injections through a process pool of N "
                          "workers (default: [execution] jobs, else 1)")
    sub.add_argument("--store", default=None, metavar="PATH",
                     help="checkpoint completed runs to this JSONL run "
                          "store (enables --resume and cross-campaign "
                          "result caching)")
    sub.add_argument("--trace-level", default=None,
                     choices=TRACE_LEVEL_NAMES,
                     help="record a structured event trace per run "
                          "(default: [trace] level, else off)")


def _add_target_arguments(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--workload", required=True, choices=sorted(WORKLOADS))
    sub.add_argument("--middleware", default="none",
                     choices=[m.value for m in MiddlewareKind])
    sub.add_argument("--watchd-version", type=int, default=3,
                     choices=(1, 2, 3))
    sub.add_argument("--seed", type=int, default=2000)
    sub.add_argument("--trace-level", default="off",
                     choices=TRACE_LEVEL_NAMES,
                     help="record a structured event trace of the run")


def _run_config(args: argparse.Namespace) -> RunConfig:
    return RunConfig(base_seed=args.seed,
                     watchd_version=args.watchd_version,
                     trace_level=args.trace_level or "off")


def _middleware(args: argparse.Namespace) -> MiddlewareKind:
    return MiddlewareKind(args.middleware)


class CliProgress:
    """Progress line with throughput and ETA, safe for dumb terminals."""

    def __init__(self, out):
        self.out = out
        self.started = time.monotonic()
        self.printed = False

    def __call__(self, done, total, run) -> None:
        elapsed = max(time.monotonic() - self.started, 1e-9)
        rate = done / elapsed
        eta = (total - done) / rate if rate > 0 else 0.0
        print(f"\r  {done}/{total} runs  {rate:7.1f} runs/s  "
              f"ETA {eta:5.1f}s", end="", file=self.out, flush=True)
        self.printed = True

    def finish(self) -> None:
        if self.printed:
            print(file=self.out)


def _open_store(path: Optional[str], resume: bool, out,
                durable: bool = False):
    """Build the run store for a command, enforcing resume semantics.

    An existing store is only reused when ``--resume`` is given, so a
    stale file is never picked up by accident.  A path naming a
    directory (or spelled with a ``.d`` suffix) opens a sharded store;
    anything else a single JSONL file.  Returns ``(store,
    error_code)``; exactly one is set.
    """
    from .core.store import open_store, store_exists

    if path is None:
        if resume:
            print("--resume needs a run store (--store PATH or "
                  "[execution] store)", file=out)
            return None, 2
        return None, None
    if store_exists(path) and not resume:
        print(f"run store {path} already exists; pass --resume to reuse "
              f"its checkpointed runs, or choose a new path", file=out)
        return None, 2
    store = open_store(path, durable=durable)
    if resume and len(store):
        corrupt = (f"; {store.corrupt_lines} corrupt mid-file line(s) "
                   f"ignored, the runs they held will re-execute"
                   if store.corrupt_lines else "")
        print(f"resuming from {path}: {len(store)} checkpointed "
              f"run(s){corrupt}", file=out)
    return store, None


# ----------------------------------------------------------------------
# Command bodies
# ----------------------------------------------------------------------
def cmd_faultlist(args, out) -> int:
    functions = args.functions.split(",") if args.functions else None
    faults = generate_fault_list(functions)
    write_fault_list_file(args.output, faults)
    print(f"wrote {len(faults)} faults to {args.output}", file=out)
    return 0


def cmd_profile(args, out) -> int:
    called = profile_workload(args.workload, _middleware(args),
                              config=_run_config(args))
    print(f"{args.workload} / {args.middleware}: "
          f"{len(called)} KERNEL32 functions called", file=out)
    for name in sorted(called):
        print(f"  {name}", file=out)
    return 0


def cmd_inject(args, out) -> int:
    fault = FaultSpec.from_line(args.fault)
    result = execute_run(get_workload(args.workload), _middleware(args),
                         fault, _run_config(args))
    print(f"fault      : {fault!r}", file=out)
    print(f"activated  : {result.activated}", file=out)
    print(f"outcome    : {result.outcome.value}", file=out)
    print(f"failure    : {result.failure_mode.value}", file=out)
    rt = (f"{result.response_time:.2f}s"
          if result.response_time is not None else "none")
    print(f"resp. time : {rt}", file=out)
    print(f"restarts   : {result.restarts_detected}", file=out)
    print(f"retries    : {result.retries_used}", file=out)
    if result.trace:
        print(f"\ntrace ({result.trace_level.label}, "
              f"{len(result.trace)} events):", file=out)
        print(render_timeline(result.trace), file=out)
    return 0


def cmd_run(args, out) -> int:
    config = DtsConfig.from_file(args.config)
    if args.trace_level is not None:
        config.trace_level = TraceLevel.parse(args.trace_level)
    functions = args.functions.split(",") if args.functions else None
    jobs = args.jobs if args.jobs is not None else config.jobs
    store, error = _open_store(args.store or config.store, args.resume, out)
    if error is not None:
        return error

    prune = None
    if args.prune_equivalent is not None:
        from .lint.valueflow import EquivalenceManifest

        try:
            prune = EquivalenceManifest.load(args.prune_equivalent)
        except (OSError, ValueError) as exc:
            print(f"cannot load equivalence manifest "
                  f"{args.prune_equivalent}: {exc}", file=out)
            if store is not None:
                store.close()
            return 2

    from .analysis.fault_families import (
        FAMILY_MECHANISMS,
        FAMILY_ORDER,
        build_family_comparison,
    )

    if args.fault_family == "all":
        families = [f for f in FAMILY_ORDER if f != "return"]
    else:
        families = [args.fault_family]

    label = f"{config.workload} / {config.middleware.label}"
    results = {}
    progress = CliProgress(out)
    try:
        for family in families:
            mechanism = FAMILY_MECHANISMS[family]
            campaign = Campaign(
                config.workload, config.middleware,
                # --functions names kernel32 exports; it only restricts
                # the parameter/return spaces (io/resource enumerate
                # their own op/resource axes).
                functions=(functions if mechanism in ("parameter", "return")
                           else None),
                config=config.run_config(),
                jobs=jobs if jobs > 1 else None, store=store,
                progress=progress, mechanism=mechanism,
                prune=prune if mechanism == "parameter" else None)
            results[family] = campaign.run()
    finally:
        progress.finish()
        if store is not None:
            store.close()

    if len(results) > 1:
        print(build_family_comparison(label, results).render(), file=out)
        result = results[families[0]]
    else:
        result = results[families[0]]
        dist = OutcomeDistribution.from_result(label, result)
        print(dist.render(), file=out)
    for family in families:
        set_result = results[family]
        prefix = f"[{family}] " if len(results) > 1 else ""
        print(f"{prefix}activated faults : "
              f"{set_result.activated_count}", file=out)
        print(f"{prefix}failure coverage : "
              f"{set_result.failure_coverage:.1%}", file=out)
        print(f"{prefix}skipped functions: "
              f"{len(set_result.skipped_functions)}", file=out)
        if store is not None:
            print(f"{prefix}resumed from store: "
                  f"{set_result.cached_count} cached, "
                  f"{set_result.executed_count} executed", file=out)
    if prune is not None:
        print(f"pruned by equivalence: {result.inferred_count} runs "
              f"inferred ({prune.fingerprint})", file=out)
    return 0


def cmd_reproduce(args, out) -> int:
    from .core.exec import ProcessPoolBackend

    # The reproduce store is a cross-figure cache: an existing file is
    # reused by design, so Figure 3 re-executes nothing after Figure 2.
    store = None
    if args.store:
        store, error = _open_store(args.store, resume=True, out=out)
        if error is not None:
            return error
    backend = (ProcessPoolBackend(args.jobs)
               if args.jobs is not None and args.jobs > 1 else None)
    suite = ExperimentSuite(
        base_seed=2000,
        log=lambda message: print(f"  {message}", file=out, flush=True),
        backend=backend, store=store,
        trace_level=args.trace_level or "off")
    try:
        report = generate_experiments_report(suite)
        checks = shape_checks(suite)
    finally:
        if backend is not None:
            backend.close()
        if store is not None:
            store.close()
    print(report, file=out)
    held = sum(1 for check in checks if check.holds)
    if args.write_report:
        with open(args.write_report, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"wrote {args.write_report}", file=out)
    print(f"shape claims: {held}/{len(checks)} hold", file=out)
    return 0 if held == len(checks) else 1


def _lookup_traced_run(store, key: str, fingerprint, out):
    """Resolve one stored run by fault key (and fingerprint prefix);
    returns ``(result, error_code)`` with exactly one set."""
    matches = store.find(key)
    if fingerprint:
        matches = [(fp, run) for fp, run in matches
                   if fp.startswith(fingerprint)]
    if not matches:
        print(f"no stored run for key {key!r}"
              + (f" under fingerprint {fingerprint}*" if fingerprint
                 else ""), file=out)
        return None, 1
    if len(matches) > 1:
        print(f"key {key!r} is ambiguous across campaigns; pass "
              f"--fingerprint one of:", file=out)
        for fp, _run in matches:
            print(f"  {fp}", file=out)
        return None, 2
    return matches[0][1], None


def cmd_trace(args, out) -> int:
    from .core.store import open_store, store_exists

    if not store_exists(args.store):
        print(f"no such run store: {args.store}", file=out)
        return 2

    with open_store(args.store) as store:
        if args.key is None:
            # Listing mode: every stored run, traced ones annotated.
            for fp, key in store.keys():
                result = store.get(fp, key)
                mark = (f"{result.trace_level.label:<7} "
                        f"{len(result.trace):5d} events"
                        if result.trace else "untraced")
                print(f"  {fp}  {key:<40} {mark}", file=out)
            print(f"{len(store)} stored runs", file=out)
            return 0

        result, error = _lookup_traced_run(store, args.key,
                                           args.fingerprint, out)
        if error is not None:
            return error
        if not result.trace:
            print(f"run {args.key!r} was stored untraced; re-run it "
                  f"with --trace-level outcome (or higher)", file=out)
            return 1

        if args.diff is not None:
            other, error = _lookup_traced_run(store, args.diff,
                                              args.fingerprint, out)
            if error is not None:
                return error
            if not other.trace:
                print(f"run {args.diff!r} was stored untraced", file=out)
                return 1
            print(render_diff(result.trace, other.trace,
                              left_label=args.key,
                              right_label=args.diff), file=out)
            from .trace import diff_traces
            return 0 if diff_traces(result.trace, other.trace) is None \
                else 1

        if args.metrics:
            print(render_metrics(derive_metrics(result.trace)), file=out)
        else:
            print(f"{args.key} ({result.trace_level.label}, "
                  f"{len(result.trace)} events)", file=out)
            print(render_timeline(result.trace), file=out)
        return 0


_WORKLOAD_ALIASES = {"apache": "Apache1", "sqlserver": "SQL"}


def _resolve_load_workload(name: str, out) -> Optional[str]:
    """Map a CLI workload name or alias to a registry name."""
    if name in WORKLOADS:
        return name
    lowered = name.lower()
    alias = _WORKLOAD_ALIASES.get(lowered)
    if alias is not None:
        return alias
    for registered in WORKLOADS:
        if registered.lower() == lowered:
            return registered
    known = sorted(WORKLOADS) + sorted(_WORKLOAD_ALIASES)
    print(f"unknown workload {name!r}; known: {', '.join(known)}",
          file=out)
    return None


def _resolve_load_middleware(value: str, watchd_version, out):
    """Parse none|mscs|watchd|watchdN into (kind, version) or None."""
    lowered = value.lower()
    if lowered.startswith("watchd") and lowered[6:] in ("1", "2", "3"):
        implied = int(lowered[6:])
        if watchd_version is not None and watchd_version != implied:
            print(f"--middleware {value} conflicts with "
                  f"--watchd-version {watchd_version}", file=out)
            return None
        return MiddlewareKind.WATCHD, implied
    try:
        kind = MiddlewareKind(lowered)
    except ValueError:
        print(f"unknown middleware {value!r}; known: none, mscs, watchd, "
              f"watchd1, watchd2, watchd3", file=out)
        return None
    return kind, (watchd_version if watchd_version is not None else 3)


def _parse_load_fault(line: str, out):
    """A fault-list line (4 tokens) or a return-fault line (3 tokens).

    Returns ``(fault, ok)`` — a fault of either mechanism, or
    ``(None, False)`` on a parse error.
    """
    from .core.faults import FaultType
    from .core.return_injector import ReturnFaultSpec

    parts = line.split()
    try:
        if len(parts) == 3:
            function, fault_type, invocation = parts
            return ReturnFaultSpec(function, FaultType(fault_type),
                                   int(invocation)), True
        return FaultSpec.from_line(line), True
    except ValueError as exc:
        print(f"bad --fault: {exc}", file=out)
        return None, False


def cmd_load(args, out) -> int:
    from .analysis.loadscale import aggregate_load_runs, render_load_scale
    from .load import LoadSpec, plan_load_tasks, run_load_tasks

    workload_name = _resolve_load_workload(args.workload, out)
    if workload_name is None:
        return 2
    resolved = _resolve_load_middleware(args.middleware,
                                        args.watchd_version, out)
    if resolved is None:
        return 2
    middleware, watchd_version = resolved

    fault = None
    if args.fault is not None:
        fault, ok = _parse_load_fault(args.fault, out)
        if not ok:
            return 2

    sweep = None
    if args.sweep:
        try:
            sweep = [int(part) for part in args.sweep.split(",") if part]
        except ValueError:
            print(f"bad --sweep: {args.sweep!r} (want comma-separated "
                  f"integers)", file=out)
            return 2

    try:
        spec = LoadSpec(workload=workload_name, middleware=middleware,
                        clients=args.clients, mode=args.mode,
                        iterations=args.iterations,
                        think_time=args.think_time, stagger=args.stagger,
                        arrival_rate=args.arrival_rate, fault=fault)
        tasks = plan_load_tasks(spec, reps=args.reps, sweep=sweep)
    except ValueError as exc:
        print(str(exc), file=out)
        return 2

    config = RunConfig(base_seed=args.seed,
                       watchd_version=watchd_version)
    store, error = _open_store(args.store, args.resume, out)
    if error is not None:
        return error

    jobs = args.jobs if args.jobs is not None else 1
    progress = CliProgress(out)
    try:
        execution = run_load_tasks(tasks, config, jobs=jobs, store=store,
                                   progress=progress)
    finally:
        progress.finish()
        if store is not None:
            store.close()

    print(render_load_scale(aggregate_load_runs(execution.runs)),
          file=out)
    total_requests = sum(run.request_count for run in execution.runs)
    total_events = sum(run.engine_events for run in execution.runs)
    print(f"\n{len(execution.runs)} load runs, {total_requests} requests, "
          f"{total_events} engine events", file=out)
    if store is not None:
        print(f"resumed from store: {execution.cached_count} cached, "
              f"{execution.executed_count} executed", file=out)
    return 0


def cmd_serve(args, out) -> int:
    from .serve import serve_forever

    if args.jobs < 1:
        print("--jobs must be >= 1", file=out)
        return 2
    return serve_forever(args.store, host=args.host, port=args.port,
                         jobs=args.jobs, segments=args.segments,
                         durable=not args.no_durable,
                         verbose=args.verbose, out=out)


def cmd_lint(args, out) -> int:
    import os

    from .lint import default_rules, dump_baseline, load_baseline, run_lint

    rules = default_rules()
    if args.rules:
        # --select accepts rule names and rule families alike, so CI
        # jobs can isolate e.g. the whole valueflow tier in one flag.
        wanted = {name.strip() for name in args.rules.split(",")}
        known = ({rule.name for rule in rules}
                 | {rule.family for rule in rules if rule.family})
        unknown = wanted - known
        if unknown:
            print(f"unknown rule(s): {', '.join(sorted(unknown))} "
                  f"(known: {', '.join(sorted(known))})", file=out)
            return 2
        rules = [rule for rule in rules
                 if rule.name in wanted or rule.family in wanted]

    paths = args.paths or ["src", "examples"]

    if args.update_baseline and args.write_baseline:
        print("--update-baseline and --write-baseline are mutually "
              "exclusive (the former rewrites the active baseline file)",
              file=out)
        return 2
    if args.jobs < 1:
        print("--jobs must be >= 1", file=out)
        return 2
    if args.census_store and not args.census_diff:
        print("--census-store requires --census-diff", file=out)
        return 2
    if args.census_diff and args.output_format == "sarif":
        print("--census-diff cannot be combined with --format sarif "
              "(use text or json)", file=out)
        return 2
    if args.equiv_sample is not None and not args.equiv_check:
        print("--equiv-sample requires --equiv-check", file=out)
        return 2
    if args.equiv_check and args.output_format == "sarif":
        print("--equiv-check cannot be combined with --format sarif "
              "(use text or json)", file=out)
        return 2
    for store_path in args.census_store or ():
        if not os.path.exists(store_path):
            print(f"no such run store: {store_path}", file=out)
            return 2

    if args.emit_equivalence:
        # Manifest emission is a standalone mode: it needs the parsed
        # module set and the value-flow facts, not the findings.
        from .lint.core import Analyzer, _lint_files
        from .lint.valueflow import valueflow_for

        analyzer = Analyzer([])
        try:
            py_files, _fault_files = analyzer.collect(paths)
        except FileNotFoundError as exc:
            print(f"no such path: {exc.args[0]}", file=out)
            return 2
        tasks = [(path, analyzer._display_path(path))
                 for path in py_files]
        modules, _parse_findings = _lint_files(tasks, [])
        manifest = valueflow_for(modules).manifest
        manifest.save(args.emit_equivalence)
        print(f"wrote {args.emit_equivalence}: "
              f"{len(manifest.classes)} class(es), "
              f"{manifest.collapsible_count} collapsible run(s) "
              f"({manifest.fingerprint})", file=out)
        return 0

    baseline = {}
    baseline_path = args.baseline
    if baseline_path is None and os.path.exists("lint-baseline.json"):
        baseline_path = "lint-baseline.json"
    if args.update_baseline:
        if not baseline_path or baseline_path == "none":
            baseline_path = "lint-baseline.json"
    elif baseline_path and baseline_path != "none":
        try:
            baseline = load_baseline(baseline_path)
        except (OSError, ValueError) as exc:
            print(f"cannot read baseline: {exc}", file=out)
            return 2

    if args.write_baseline:
        # A fresh baseline captures everything, unfiltered.
        baseline = {}

    try:
        result = run_lint(paths, rules=rules, baseline=baseline,
                          jobs=args.jobs)
    except FileNotFoundError as exc:
        print(f"no such path: {exc.args[0]}", file=out)
        return 2

    if args.update_baseline:
        # `dump_baseline` sorts keys and counts occurrences, so the
        # regenerated file is deterministic and a round-trip on an
        # unchanged tree is a no-op.  Prior entries survive only if
        # their file is outside this run's scope *and* still exists —
        # suppressions for deleted files are pruned, suppressions for
        # fixed in-scope files simply aren't re-emitted.
        from .lint import baseline_entry_path

        keep: dict = {}
        pruned = 0
        if os.path.exists(baseline_path):
            try:
                previous = load_baseline(baseline_path)
            except (OSError, ValueError) as exc:
                print(f"cannot read baseline: {exc}", file=out)
                return 2
            for key, count in previous.items():
                entry_path = baseline_entry_path(key)
                if entry_path in result.checked_paths:
                    continue  # in scope: this run's findings decide
                if not os.path.exists(entry_path):
                    pruned += 1
                    continue
                keep[key] = count
        with open(baseline_path, "w", encoding="utf-8") as handle:
            handle.write(dump_baseline(result.findings, keep=keep))
        print(f"regenerated {baseline_path} with "
              f"{len(result.findings)} finding(s), {len(keep)} "
              f"out-of-scope entr(y/ies) kept, {pruned} stale "
              f"entr(y/ies) pruned", file=out)
        return 0

    if args.write_baseline:
        with open(args.write_baseline, "w", encoding="utf-8") as handle:
            handle.write(dump_baseline(result.findings))
        print(f"wrote {len(result.findings)} finding(s) to "
              f"{args.write_baseline}", file=out)
        return 0

    census_report = None
    if args.census_diff:
        # The census needs the parsed module set, not the findings, so
        # it re-collects with no rules attached (parse cost only).
        from .lint.censusdiff import census_diff
        from .lint.core import Analyzer, _lint_files

        analyzer = Analyzer([])
        py_files, _fault_files = analyzer.collect(paths)
        tasks = [(path, analyzer._display_path(path))
                 for path in py_files]
        modules, _parse_findings = _lint_files(tasks, [])
        census_report = census_diff(
            modules, store_paths=args.census_store or ())

    equiv_report = None
    if args.equiv_check:
        from .lint.core import Analyzer, _lint_files
        from .lint.valueflow import equiv_check

        analyzer = Analyzer([])
        py_files, _fault_files = analyzer.collect(paths)
        tasks = [(path, analyzer._display_path(path))
                 for path in py_files]
        modules, _parse_findings = _lint_files(tasks, [])
        sample = args.equiv_sample if args.equiv_sample is not None else 6
        equiv_report = equiv_check(modules, sample=sample)

    if args.output_format == "json":
        import json as json_module

        payload = json_module.loads(result.render_json())
        if census_report is not None:
            payload["census"] = census_report.to_json()
        if equiv_report is not None:
            payload["equiv"] = equiv_report.to_json()
        print(json_module.dumps(payload, indent=2), file=out)
    elif args.output_format == "sarif":
        from .lint.sarif import render_sarif
        print(render_sarif(result, rules), file=out)
    else:
        print(result.render_text(), file=out)
        if census_report is not None:
            print(census_report.render_text(), file=out)
        if equiv_report is not None:
            print(equiv_report.render_text(), file=out)
    status = 0 if result.clean else 1
    if census_report is not None and not census_report.clean:
        status = 1
    if equiv_report is not None and not equiv_report.clean:
        status = 1
    return status


_COMMANDS = {
    "faultlist": cmd_faultlist,
    "profile": cmd_profile,
    "inject": cmd_inject,
    "run": cmd_run,
    "reproduce": cmd_reproduce,
    "trace": cmd_trace,
    "load": cmd_load,
    "lint": cmd_lint,
    "serve": cmd_serve,
}


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args, out or sys.stdout)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

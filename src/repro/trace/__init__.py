"""repro.trace — structured, low-overhead run tracing.

A :class:`Tracer` rides on the simulated machine and records a
deterministic stream of :class:`TraceEvent`\\ s from every layer of a
fault-injection run — the event engine, the interception layer and
injector, the SCM, and the middleware monitors.  The stream is captured
into the run store alongside each :class:`~repro.core.collector.RunResult`,
rendered by ``python -m repro trace``, and used as the *oracle* of the
differential test suite: serial and process-pool campaigns must produce
byte-identical traces.

Levels (``[trace] level`` in the config): ``off`` < ``outcome`` <
``calls`` < ``full`` — see :class:`TraceLevel`.
"""

from .events import (
    TRACE_LEVEL_NAMES,
    TraceEvent,
    TraceLevel,
    encode_event,
    event_from_list,
    event_to_list,
    trace_from_jsonl,
    trace_from_lists,
    trace_to_jsonl,
    trace_to_lists,
)
from .metrics import (
    RunMetrics,
    count_restarts_from_trace,
    derive_metrics,
    mean,
)
from .timeline import (
    TraceDivergence,
    diff_traces,
    format_event,
    render_diff,
    render_metrics,
    render_timeline,
)
from .tracer import Tracer, callback_label

__all__ = [
    "TRACE_LEVEL_NAMES",
    "TraceLevel",
    "TraceEvent",
    "Tracer",
    "callback_label",
    "encode_event",
    "event_to_list",
    "event_from_list",
    "trace_to_jsonl",
    "trace_from_jsonl",
    "trace_to_lists",
    "trace_from_lists",
    "RunMetrics",
    "derive_metrics",
    "count_restarts_from_trace",
    "mean",
    "TraceDivergence",
    "diff_traces",
    "format_event",
    "render_diff",
    "render_metrics",
    "render_timeline",
]

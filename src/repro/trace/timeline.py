"""Human-readable timeline rendering and event-by-event trace diffing.

Backs ``python -m repro trace <store> <run-key>``: render one run's
trace as an indented timeline, or align two traces and show where they
diverge (the debugging view for failed reproductions and backend
nondeterminism).
"""

from __future__ import annotations

from typing import Optional, Sequence

from .events import TraceEvent
from .metrics import RunMetrics


def _format_data(data: dict) -> str:
    return " ".join(f"{key}={value!r}" for key, value in data.items())


def format_event(event: TraceEvent) -> str:
    kind = f"{event.category}.{event.name}"
    return f"{event.time:10.3f}  {kind:<18} {_format_data(event.data)}".rstrip()


def render_timeline(events: Sequence[TraceEvent]) -> str:
    """The full trace as one line per event, time-ordered."""
    if not events:
        return "(empty trace)"
    lines = [f"{'time':>10}  {'event':<18} data", "-" * 64]
    lines.extend(format_event(event) for event in events)
    return "\n".join(lines)


def render_metrics(metrics: RunMetrics) -> str:
    """The derived per-run metrics as a small report."""
    def fmt(value, suffix="s"):
        return "n/a" if value is None else f"{value:.3f}{suffix}"

    lines = [
        f"activated at        : {fmt(metrics.activated_at)}",
        f"activated function  : {metrics.activated_function or 'n/a'}",
        f"activation invocation: {metrics.activation_invocation or 'n/a'}",
        f"calls until activation: {metrics.calls_until_activation or 'n/a'}",
        f"detected at         : {fmt(metrics.detected_at)}"
        + (f" ({metrics.detection_reason})" if metrics.detection_reason
           else ""),
        f"time to detection   : {fmt(metrics.time_to_detection)}",
        f"restarted at        : {fmt(metrics.restarted_at)}",
        f"time to restart     : {fmt(metrics.time_to_restart)}",
        f"restarts            : {metrics.restart_count}",
        f"outcome             : {metrics.outcome or 'n/a'}",
    ]
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Diffing
# ----------------------------------------------------------------------
class TraceDivergence:
    """The first position where two traces stop agreeing."""

    __slots__ = ("index", "left", "right")

    def __init__(self, index: int, left: Optional[TraceEvent],
                 right: Optional[TraceEvent]):
        self.index = index
        self.left = left
        self.right = right

    def __repr__(self) -> str:
        return f"<TraceDivergence at #{self.index}>"


def _events_equal(left: TraceEvent, right: TraceEvent) -> bool:
    return (left.time == right.time and left.category == right.category
            and left.name == right.name and left.data == right.data)


def diff_traces(left: Sequence[TraceEvent],
                right: Sequence[TraceEvent]) -> Optional[TraceDivergence]:
    """First event-by-event divergence, or None when identical."""
    for index in range(max(len(left), len(right))):
        a = left[index] if index < len(left) else None
        b = right[index] if index < len(right) else None
        if a is None or b is None or not _events_equal(a, b):
            return TraceDivergence(index, a, b)
    return None


def render_diff(left: Sequence[TraceEvent], right: Sequence[TraceEvent],
                left_label: str = "left", right_label: str = "right",
                context: int = 3) -> str:
    """Aligned diff report: shared prefix context, then the divergence."""
    divergence = diff_traces(left, right)
    if divergence is None:
        return (f"traces are identical "
                f"({len(left)} events, byte-identical streams)")
    index = divergence.index
    lines = [f"traces diverge at event #{index} "
             f"({len(left)} vs {len(right)} events)"]
    start = max(0, index - context)
    if start > 0:
        lines.append(f"  ... {start} identical event(s) ...")
    for position in range(start, index):
        lines.append(f"    {format_event(left[position])}")
    lines.append(f"- [{left_label}] "
                 + (format_event(divergence.left).strip()
                    if divergence.left is not None else "(stream ended)"))
    lines.append(f"+ [{right_label}] "
                 + (format_event(divergence.right).strip()
                    if divergence.right is not None else "(stream ended)"))
    return "\n".join(lines)

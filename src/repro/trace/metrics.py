"""Per-run metrics derived from a trace stream.

The paper's Figures 4 and 5 argue about *why* runs end the way they do
— how quickly the middleware noticed a corrupted server and how long
the restart took.  With a trace these stop being inferences and become
measurements:

- **time to detection** — fault activation (``fault.activated``) to the
  middleware's first detection event (``mw.detect``);
- **time to restart** — detection to the service demonstrably running
  again (the next ``scm.state`` → ``running`` transition, or the
  middleware re-establishing monitoring);
- **activated-fault index** — the invocation at which the armed fault
  fired;
- **calls until activation** — how many intercepted library calls the
  workload made before the fault activated.
"""

from __future__ import annotations

from typing import Iterable, Optional

from .events import TraceEvent


class RunMetrics:
    """What one run's trace says about detection and recovery."""

    __slots__ = ("activated_at", "activated_function",
                 "activation_invocation", "calls_until_activation",
                 "detected_at", "detection_reason", "restarted_at",
                 "restart_count", "outcome")

    def __init__(self):
        self.activated_at: Optional[float] = None
        self.activated_function: Optional[str] = None
        self.activation_invocation: Optional[int] = None
        self.calls_until_activation: Optional[int] = None
        self.detected_at: Optional[float] = None
        self.detection_reason: Optional[str] = None
        self.restarted_at: Optional[float] = None
        self.restart_count = 0
        self.outcome: Optional[str] = None

    # ------------------------------------------------------------------
    @property
    def time_to_detection(self) -> Optional[float]:
        """Fault activation -> middleware detection (virtual seconds)."""
        if self.activated_at is None or self.detected_at is None:
            return None
        return self.detected_at - self.activated_at

    @property
    def time_to_restart(self) -> Optional[float]:
        """Middleware detection -> service running again."""
        if self.detected_at is None or self.restarted_at is None:
            return None
        return self.restarted_at - self.detected_at

    def __repr__(self) -> str:
        return (f"<RunMetrics activated_at={self.activated_at} "
                f"ttd={self.time_to_detection} ttr={self.time_to_restart} "
                f"restarts={self.restart_count}>")


def derive_metrics(events: Iterable[TraceEvent]) -> RunMetrics:
    """Walk one run's trace and extract the derived metrics.

    Requires at least ``outcome``-level events; call-level detail is
    not needed (the activation event carries its own call index).
    """
    metrics = RunMetrics()
    for event in events:
        category, name = event.category, event.name
        if category == "fault" and name == "activated":
            if metrics.activated_at is None:
                metrics.activated_at = event.time
                metrics.activated_function = event.data.get("function")
                metrics.activation_invocation = event.data.get("invocation")
                metrics.calls_until_activation = event.data.get("call_index")
        elif category == "mw":
            if name == "detect":
                if (metrics.detected_at is None
                        and metrics.activated_at is not None
                        and event.time >= metrics.activated_at):
                    metrics.detected_at = event.time
                    metrics.detection_reason = event.data.get("reason")
            elif name == "restart":
                metrics.restart_count += 1
            elif name == "monitor":
                # watchd re-established monitoring: recovery complete.
                if (metrics.detected_at is not None
                        and metrics.restarted_at is None
                        and event.time > metrics.detected_at):
                    metrics.restarted_at = event.time
        elif category == "scm" and name == "state":
            if (event.data.get("state") == "running"
                    and metrics.detected_at is not None
                    and metrics.restarted_at is None
                    and event.time > metrics.detected_at):
                metrics.restarted_at = event.time
        elif category == "run" and name == "end":
            metrics.outcome = event.data.get("outcome")
    return metrics


def count_restarts_from_trace(events: Iterable[TraceEvent],
                              until: Optional[float] = None) -> int:
    """Restart evidence from the trace stream itself.

    The middleware emits one ``mw.restart`` event at exactly the points
    it writes a restart line to its log channel, so this agrees with
    :func:`repro.core.collector.count_restarts`'s post-hoc reading of
    the event log / watchd log — a property the test suite pins.
    """
    if until is None:
        until = float("inf")
    return sum(1 for event in events
               if event.category == "mw" and event.name == "restart"
               and event.time <= until)


def mean(values: Iterable[float]) -> Optional[float]:
    """Arithmetic mean, or None for an empty sequence."""
    values = list(values)
    if not values:
        return None
    return sum(values) / len(values)

"""The trace event model and its wire format.

A run's trace is an ordered sequence of :class:`TraceEvent`\\ s, each
stamped with the virtual time it occurred at and a ``category.name``
pair from the schema in DESIGN.md (``run.start``, ``fault.activated``,
``call.enter``, ``scm.state``, ``mw.restart``, ``engine.fire``, …).

Everything here is deterministic by construction: event payloads are
restricted to JSON scalars, sequence numbers are densely assigned in
emission order, and the JSONL encoding sorts keys — so two runs with
the same seed produce *byte-identical* trace streams whatever process
or worker executed them.  That is what lets the differential test
suite use traces as an oracle for the serial-vs-pool contract.
"""

from __future__ import annotations

import enum
import json
from typing import Iterable, Optional, Union


class TraceLevel(enum.IntEnum):
    """How much of a run is recorded (``[trace] level`` in the config).

    Levels are cumulative: each one records everything below it.

    - ``off`` — no events at all; the emitter short-circuits.
    - ``outcome`` — run lifecycle, fault armed/activated (with the
      corrupted value before/after), SCM state transitions, middleware
      heartbeat/detection/restart.  Cheap enough to stay on by default.
    - ``calls`` — adds every intercepted library call (entry and exit).
    - ``full`` — adds engine scheduling and process context switches.
    """

    OFF = 0
    OUTCOME = 1
    CALLS = 2
    FULL = 3

    @classmethod
    def parse(cls, value: Union[str, int, "TraceLevel"]) -> "TraceLevel":
        if isinstance(value, cls):
            return value
        if isinstance(value, int):
            return cls(value)
        try:
            return cls[str(value).strip().upper()]
        except KeyError:
            names = ", ".join(level.name.lower() for level in cls)
            raise ValueError(
                f"unknown trace level {value!r} (expected one of {names})"
            ) from None

    @property
    def label(self) -> str:
        return self.name.lower()


TRACE_LEVEL_NAMES = tuple(level.label for level in TraceLevel)

# Payload values are restricted to JSON scalars so every event encodes
# deterministically and round-trips exactly.
Scalar = Union[str, int, float, bool, None]


class TraceEvent:
    """One structured event in a run's trace stream."""

    __slots__ = ("seq", "time", "category", "name", "data")

    def __init__(self, seq: int, time: float, category: str, name: str,
                 data: Optional[dict] = None):
        self.seq = seq
        self.time = time
        self.category = category
        self.name = name
        self.data = data if data is not None else {}

    @property
    def kind(self) -> str:
        """The schema identifier, e.g. ``fault.activated``."""
        return f"{self.category}.{self.name}"

    def __eq__(self, other) -> bool:
        return (isinstance(other, TraceEvent)
                and self.seq == other.seq and self.time == other.time
                and self.category == other.category
                and self.name == other.name and self.data == other.data)

    def __hash__(self) -> int:
        return hash((self.seq, self.time, self.category, self.name,
                     tuple(sorted(self.data.items()))))

    def __repr__(self) -> str:
        return (f"<TraceEvent #{self.seq} t={self.time:.3f} "
                f"{self.kind} {self.data!r}>")


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------
def event_to_list(event: TraceEvent) -> list:
    """The compact JSON shape: ``[time, category, name, data]``.

    The sequence number is implicit (it equals the event's position in
    the stream), which keeps stored traces small.
    """
    return [event.time, event.category, event.name, event.data]


def event_from_list(seq: int, entry: Iterable) -> TraceEvent:
    time, category, name, data = entry
    return TraceEvent(seq, time, category, name, dict(data))


def encode_event(event: TraceEvent) -> str:
    """One canonical JSONL line (sorted keys, no whitespace)."""
    return json.dumps(event_to_list(event), sort_keys=True,
                      separators=(",", ":"))


def trace_to_jsonl(events: Iterable[TraceEvent]) -> str:
    """The canonical byte representation of a whole trace stream."""
    return "".join(encode_event(event) + "\n" for event in events)


def trace_from_jsonl(text: str) -> list[TraceEvent]:
    events = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        events.append(event_from_list(len(events), json.loads(line)))
    return events


def trace_to_lists(events: Iterable[TraceEvent]) -> list[list]:
    """The embeddable JSON shape used inside run-store records."""
    return [event_to_list(event) for event in events]


def trace_from_lists(entries: Iterable[Iterable]) -> list[TraceEvent]:
    return [event_from_list(seq, entry)
            for seq, entry in enumerate(entries)]

"""The per-run trace emitter.

One :class:`Tracer` is built per fault-injection run and handed to the
:class:`~repro.nt.machine.Machine`, which exposes it to every subsystem
(the engine, the interception layer, the SCM, middleware programs).

Emission is designed to cost nothing when it is not wanted:

- at level ``off`` no tracer is attached at all (``machine.tracer is
  None``), so hot paths pay a single attribute load and ``None`` test;
- call sites gate on the precomputed ``outcome_enabled`` /
  ``calls_enabled`` / ``full_enabled`` booleans rather than comparing
  levels per event;
- :meth:`Tracer.emit` itself short-circuits below ``outcome``, so even
  a mis-gated call site cannot record events on an off-level tracer.
"""

from __future__ import annotations

import sys

from .events import TraceEvent, TraceLevel, trace_to_jsonl


class Tracer:
    """Collects one run's ordered event stream."""

    __slots__ = ("level", "events", "outcome_enabled", "calls_enabled",
                 "full_enabled")

    def __init__(self, level: TraceLevel | str = TraceLevel.OUTCOME):
        self.level = TraceLevel.parse(level)
        self.events: list[TraceEvent] = []
        self.outcome_enabled = self.level >= TraceLevel.OUTCOME
        self.calls_enabled = self.level >= TraceLevel.CALLS
        self.full_enabled = self.level >= TraceLevel.FULL

    def emit(self, time: float, category: str, name: str, /, **data) -> None:
        """Record one event (a no-op below level ``outcome``).

        The positional parameters are positional-only so payload keys
        named ``time``/``category``/``name`` cannot collide with them.
        """
        if not self.outcome_enabled:
            return
        events = self.events
        # Category/name values are drawn from a small fixed vocabulary;
        # interning collapses the per-event copies a full-level trace of
        # a long load run would otherwise hold, and makes the equality
        # checks in trace diffing pointer comparisons.
        events.append(TraceEvent(len(events), time, sys.intern(category),
                                 sys.intern(name), data))

    def jsonl(self) -> str:
        """The canonical byte representation of the stream so far."""
        return trace_to_jsonl(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return f"<Tracer level={self.level.label} events={len(self.events)}>"


def callback_label(callback) -> str:
    """A deterministic display name for an engine callback.

    ``repr`` would leak memory addresses; qualified names are stable
    across processes, which full-level traces rely on.
    """
    label = getattr(callback, "__qualname__", None)
    return label if label else type(callback).__name__

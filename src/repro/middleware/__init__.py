"""Fault-tolerance middleware packages under test.

- :mod:`mscs` — Microsoft Cluster Server's generic service resource
  monitor (coarse state polling, SCM restarts, event-log records).
- :mod:`watchd` — Bell Labs NT-SwiFT watchd in the three versions the
  paper iterates through (the ``getServiceInfo`` race, the merged
  start, and the validate-and-retry start).
"""

from .base import MiddlewareLogEntry, probe_service
from .mscs import ClusterService
from .watchd import Watchd

__all__ = ["ClusterService", "Watchd", "MiddlewareLogEntry", "probe_service"]

"""Common scaffolding for fault-tolerance middleware.

Middleware packages run as processes on the target machine (like the
real MSCS cluster service and NT-SwiFT's watchd daemon) but are not
fault-injection targets — DTS injects the *server* programs only.  They
interact with the world exactly the way their real counterparts do:
through the SCM (start/stop/query), process exit waits, and — for
watchd — an application-level liveness probe over the network.
"""

from __future__ import annotations

from typing import Optional

from ..net.http import ProbePing, ProbePong
from ..net.transport import Side
from ..sim import TIMED_OUT, Sleep, Wait


class MiddlewareLogEntry:
    """One line of a middleware's own log file."""

    __slots__ = ("time", "source", "message")

    def __init__(self, time: float, source: str, message: str):
        self.time = time
        self.source = source
        self.message = message

    def __repr__(self) -> str:
        return f"[{self.time:8.3f}] {self.source}: {self.message}"


def trace_middleware(ctx, name: str, **data) -> None:
    """Emit one ``mw.*`` trace event (heartbeat / detect / restart /
    monitor / …) on the machine's tracer, if tracing is on.

    The restart events in particular are load-bearing: the data
    collector re-derives its restart count from them when tracing is
    enabled, so middleware must emit ``mw.restart`` at exactly the
    points it writes restart evidence to its log channel.
    """
    tracer = ctx.machine.tracer
    if tracer is not None and tracer.outcome_enabled:
        tracer.emit(ctx.machine.engine.now, "mw", name, **data)


def probe_service(ctx, port: int, reply_timeout: float = 12.0):
    """One liveness probe: connect, ping, await pong.

    Returns True when the server answered — the applicative heartbeat
    that distinguishes watchd from MSCS's generic resource monitor
    (which, per the paper, only watches coarse service state).
    """
    transport = ctx.machine.transport
    connection = yield from transport.connect(port, ctx.process, timeout=3.0)
    if connection is None:
        return False
    try:
        transport.send(connection, Side.CLIENT, ProbePing())
        reply = yield from transport.recv(connection, Side.CLIENT,
                                          timeout=reply_timeout)
    finally:
        transport.close(connection, Side.CLIENT)
    return isinstance(reply, ProbePong)


def wait_for_exit(process, timeout: float):
    """Wait on a process handle; True when it died within the window."""
    if process is None or not process.alive:
        return True
    result = yield Wait(process.exit_event, timeout=timeout)
    return result is not TIMED_OUT


def sleep(seconds: float):
    yield Sleep(seconds)

"""NT-SwiFT watchd, in the three versions Section 4.3 iterates through.

All versions share the monitoring loop: wait on the service process
handle for death (immediate detection, unlike MSCS's polling) plus a
periodic application-level liveness probe that catches *hangs*.  They
differ in how a service start is performed and verified — exactly the
axis the paper's DTS-driven debugging moved along:

**Watchd1** — ``startService()`` (asynchronous), then after its
bookkeeping delay ``getServiceInfo()`` to obtain the process handle.
A service that dies inside that window can never be monitored or
restarted: *"This small window of opportunity was sufficient to
prevent watchd from correctly obtaining the necessary process
handle."*

**Watchd2** — merges ``getServiceInfo()`` into ``startService()``: the
handle is captured at spawn, closing the race.  The merged call,
however, now *waits internally* for the service to report RUNNING and
declares the start failed on its (fixed, short) internal timeout —
which penalises slow starters: Apache's master legitimately needs
longer than the internal wait whenever its child is slow to come up,
so Watchd2 kills and abandons services Watchd1 would have happily
monitored.  That is the mechanism behind the paper's surprising
"failure outcomes for Apache1 actually increased" result.

**Watchd3** — additionally *validates* the captured handle and
re-verifies the service state with the SCM, retrying the whole start —
patiently waiting out ``ERROR_SERVICE_DATABASE_LOCKED`` periods — until
the service is demonstrably running.  This is what recovers services
that die while the SCM holds its Start-Pending lock (Apache's master,
SQL Server's recovery phase).

Watchd logs to *its own* log (``machine.watchd_log``), not the NT event
log — the paper notes DTS reads restart evidence from a separate log
file for NT-SwiFT.
"""

from __future__ import annotations

from typing import Optional

from ..nt.errors import (
    ERROR_SERVICE_ALREADY_RUNNING,
    ERROR_SERVICE_DATABASE_LOCKED,
    ERROR_SUCCESS,
)
from ..nt.scm import ServiceState
from ..servers.base import WATCHD_ENV_MARKER
from ..sim import Sleep
from .base import (
    MiddlewareLogEntry,
    probe_service,
    trace_middleware,
    wait_for_exit,
)

LOG_SOURCE = "watchd"

# Timing knobs (seconds); see the class docstring for their roles.
V1_BOOKKEEPING_DELAY = 1.8
V2_RUNNING_WAIT = 10.0
V3_RUNNING_WAIT = 15.0
V3_MAX_START_ATTEMPTS = 30
V3_RETRY_DELAY = 2.0
DEATH_WATCH_INTERVAL = 5.0
PROBE_INTERVAL = 10.0
PROBE_FAILURES_TO_RESTART = 2


def install(machine) -> None:
    """Traces watchd leaves on the system: its own log, and the
    NT-SwiFT environment marker that makes servers disable their
    redundant internal watchdogs (the Table 1 deltas)."""
    machine.base_environment[WATCHD_ENV_MARKER] = "1"
    if not hasattr(machine, "watchd_log"):
        machine.watchd_log = []


class Watchd:
    """watchd.exe monitoring one NT service."""

    image_name = "watchd.exe"

    def __init__(self, service_name: str, probe_port: Optional[int],
                 version: int = 3):
        if version not in (1, 2, 3):
            raise ValueError(f"unknown watchd version {version}")
        self.service_name = service_name
        self.probe_port = probe_port
        self.version = version
        self.gave_up = False
        self.restart_count = 0

    # ------------------------------------------------------------------
    def main(self, ctx):
        process = yield from self._start_service(ctx)
        while True:
            if process is None:
                self.gave_up = True
                self._log(ctx, f"giving up on {self.service_name}")
                trace_middleware(ctx, "giveup", service=self.service_name)
                return
            process = yield from self._monitor(ctx, process)
            # _monitor returns the replacement process after a restart,
            # or None when a restart could not be accomplished.

    # ------------------------------------------------------------------
    # Version-specific start-and-acquire
    # ------------------------------------------------------------------
    def _start_service(self, ctx):
        if self.version == 1:
            return (yield from self._start_v1(ctx))
        if self.version == 2:
            return (yield from self._start_v2(ctx))
        return (yield from self._start_v3(ctx))

    def _start_v1(self, ctx):
        """startService(); ...bookkeeping...; getServiceInfo()."""
        scm = ctx.machine.scm
        error = scm.start_service(self.service_name)
        if error not in (ERROR_SUCCESS, ERROR_SERVICE_ALREADY_RUNNING):
            self._log(ctx, f"startService failed: {error}")
            return None
        yield Sleep(V1_BOOKKEEPING_DELAY)
        process = scm.service_process(self.service_name)  # getServiceInfo()
        if process is None:
            # The race: the process died inside the window.
            self._log(ctx, "getServiceInfo failed: no process handle")
            return None
        self._log(ctx, f"monitoring {self.service_name} pid={process.pid}")
        trace_middleware(ctx, "monitor", service=self.service_name,
                         pid=process.pid)
        return process

    def _start_v2(self, ctx):
        """Merged startService(): handle captured at spawn, but the call
        itself waits (briefly) for RUNNING and fails hard on timeout."""
        scm = ctx.machine.scm
        error = scm.start_service(self.service_name)
        if error not in (ERROR_SUCCESS, ERROR_SERVICE_ALREADY_RUNNING):
            self._log(ctx, f"startService failed: {error}")
            return None
        service = scm.get_service(self.service_name)
        process = service.process  # captured atomically: no race window
        waited = 0.0
        while waited < V2_RUNNING_WAIT:
            if service.state is ServiceState.RUNNING and \
                    process is not None and process.alive:
                self._log(ctx,
                          f"monitoring {self.service_name} pid={process.pid}")
                trace_middleware(ctx, "monitor", service=self.service_name,
                                 pid=process.pid)
                return process
            if process is not None and not process.alive:
                if service.running_since is not None:
                    # startService had effectively completed: the death
                    # is a monitoring event, not a start failure.  The
                    # captured handle is exactly what v1's race lost.
                    self._log(ctx, f"{self.service_name} died right "
                                   f"after start; handle retained")
                    trace_middleware(ctx, "monitor",
                                     service=self.service_name,
                                     pid=process.pid)
                    return process
                if service.state is ServiceState.STOPPED:
                    self._log(ctx, "service died before running")
                    return None
            yield Sleep(0.5)
            waited += 0.5
        # Internal timeout: declare the start failed and clean up —
        # even if a slow starter would have made it eventually.
        self._log(ctx, f"{self.service_name} did not reach RUNNING "
                       f"within {V2_RUNNING_WAIT:.0f}s; marking failed")
        if process is not None and process.alive:
            process.terminate(exit_code=1)
        return None

    def _start_v3(self, ctx):
        """Merged start + handle validation + SCM verification + retry."""
        scm = ctx.machine.scm
        spawns = 0
        for _attempt in range(V3_MAX_START_ATTEMPTS):
            error = scm.start_service(self.service_name)
            if error == ERROR_SERVICE_DATABASE_LOCKED:
                # Wait out the pending-state lock and try again.
                yield Sleep(V3_RETRY_DELAY)
                continue
            if error not in (ERROR_SUCCESS, ERROR_SERVICE_ALREADY_RUNNING):
                yield Sleep(V3_RETRY_DELAY)
                continue
            spawns += 1
            if spawns > 1 or error == ERROR_SERVICE_ALREADY_RUNNING or \
                    scm.get_service(self.service_name).start_count > 1:
                # A second spawn within one acquisition is a restart of
                # the server program and is logged as such.
                self.restart_count += 1
                self._log(ctx, f"restarting {self.service_name} "
                               f"(validated start, restart "
                               f"#{self.restart_count})")
                trace_middleware(ctx, "restart", service=self.service_name,
                                 count=self.restart_count)
            service = scm.get_service(self.service_name)
            process = service.process
            waited = 0.0
            while waited < V3_RUNNING_WAIT:
                # Explicit handle validation before trusting it.
                if process is None or not process.alive:
                    break
                if service.state is ServiceState.RUNNING and \
                        scm.service_process(self.service_name) is process:
                    self._log(ctx, f"monitoring {self.service_name} "
                                   f"pid={process.pid} (verified)")
                    trace_middleware(ctx, "monitor",
                                     service=self.service_name,
                                     pid=process.pid)
                    return process
                yield Sleep(0.5)
                waited += 0.5
            # Not verifiably running: reap any leftover and retry.
            if process is not None and process.alive and \
                    service.state is not ServiceState.RUNNING:
                process.terminate(exit_code=1)
            yield Sleep(V3_RETRY_DELAY)
        self._log(ctx, f"exhausted start attempts for {self.service_name}")
        return None

    # ------------------------------------------------------------------
    # Monitoring loop (shared by all versions)
    # ------------------------------------------------------------------
    def _monitor(self, ctx, process):
        probe_failures = 0
        time_to_probe = PROBE_INTERVAL
        while True:
            died = yield from wait_for_exit(process, DEATH_WATCH_INTERVAL)
            if died:
                self._log(ctx, f"{self.service_name} pid={process.pid} died "
                               f"(exit={process.exit_code})")
                trace_middleware(ctx, "detect", service=self.service_name,
                                 reason="died", pid=process.pid)
                return (yield from self._restart(ctx))
            if self.probe_port is None:
                continue
            time_to_probe -= DEATH_WATCH_INTERVAL
            if time_to_probe > 0:
                continue
            time_to_probe = PROBE_INTERVAL
            healthy = yield from probe_service(ctx, self.probe_port)
            trace_middleware(ctx, "heartbeat", service=self.service_name,
                             port=self.probe_port, healthy=healthy)
            if healthy:
                probe_failures = 0
                continue
            probe_failures += 1
            self._log(ctx, f"probe failure {probe_failures} "
                           f"for {self.service_name}")
            if probe_failures >= PROBE_FAILURES_TO_RESTART:
                self._log(ctx, f"{self.service_name} unresponsive; "
                               f"forcing restart")
                trace_middleware(ctx, "detect", service=self.service_name,
                                 reason="hung")
                if process.alive:
                    process.terminate(exit_code=1)
                yield Sleep(0.5)  # let the SCM observe the death
                return (yield from self._restart(ctx))

    def _restart(self, ctx):
        # Let the SCM finish observing the failure before restarting
        # (also guarantees this loop always consumes simulated time).
        yield Sleep(0.25)
        if self.version in (1, 2):
            self.restart_count += 1
            self._log(ctx, f"restarting {self.service_name} "
                           f"(restart #{self.restart_count})")
            trace_middleware(ctx, "restart", service=self.service_name,
                             count=self.restart_count)
        # (v3 logs its restarts inside the validated start loop, which
        # is the only place it ever respawns the server.)
        if self.version in (1, 2):
            # Limited patience: a few quick attempts, then give up —
            # a Start-Pending database lock outlasts them.
            for _attempt in range(3):
                process = yield from self._start_service(ctx)
                if process is not None:
                    return process
                yield Sleep(2.0)
            return None
        return (yield from self._start_service(ctx))

    # ------------------------------------------------------------------
    def _log(self, ctx, message: str) -> None:
        entry = MiddlewareLogEntry(ctx.machine.engine.now, LOG_SOURCE, message)
        ctx.machine.watchd_log.append(entry)

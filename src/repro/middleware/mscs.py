"""Microsoft Cluster Server — the *generic service* resource monitor.

The paper is explicit that only the stock generic monitor was used:
*"In fairness to MSCS, only the generic service resource monitor is
used.  A custom service resource monitor ... would probably improve the
MSCS results."*  Accordingly this model:

- brings the service online through the SCM;
- polls coarse service state on a fixed IsAlive cadence — it detects
  that the service *stopped*, but has no application-level heartbeat,
  so a hung-but-running server looks healthy forever;
- restarts a stopped service through the SCM, waiting out Start-Pending
  database locks simply by polling again later;
- gives up (marks the resource failed) after the restart threshold,
  like the real generic resource's restart policy.

Restart actions are written to the NT event log under the ``ClusSvc``
source — the channel the DTS data collector reads restart evidence
from, exactly as Section 3 describes.
"""

from __future__ import annotations

from ..nt.errors import ERROR_SERVICE_ALREADY_RUNNING, ERROR_SUCCESS
from ..nt.eventlog import EventType
from ..nt.scm import ServiceState
from ..servers.base import CLUSTER_ENV_MARKER
from ..sim import Sleep
from .base import trace_middleware

EVENT_SOURCE = "ClusSvc"
EVENT_ID_ONLINE = 1200
EVENT_ID_RESTART = 1122
EVENT_ID_RESOURCE_FAILED = 1069

# The generic resource monitor's IsAlive cadence: the stock default is
# 60 seconds (LooksAlive's cheap 5-second check cannot see inside a
# generic service).  This detection latency is the key difference from
# watchd's immediate process-handle death watch, and is what turns
# server deaths *during the client's request window* into failures that
# watchd recovers.
DEFAULT_POLL_INTERVAL = 60.0
DEFAULT_RESTART_THRESHOLD = 3


def install(machine) -> None:
    """System-level traces MSCS leaves on a node it manages (the
    cluster service sets machine-wide environment, which the servers'
    cluster-aware startup branches react to — the Table 1 deltas)."""
    machine.base_environment[CLUSTER_ENV_MARKER] = "C:\\cluster\\cluster.log"


class ClusterService:
    """clussvc.exe with one generic-service resource."""

    image_name = "clussvc.exe"

    def __init__(self, service_name: str,
                 poll_interval: float = DEFAULT_POLL_INTERVAL,
                 restart_threshold: int = DEFAULT_RESTART_THRESHOLD):
        self.service_name = service_name
        self.poll_interval = poll_interval
        self.restart_threshold = restart_threshold
        self.restart_count = 0
        self.resource_failed = False

    def main(self, ctx):
        machine = ctx.machine
        scm = machine.scm
        error = scm.start_service(self.service_name)
        if error == ERROR_SUCCESS:
            self._log(machine, EventType.INFORMATION, EVENT_ID_ONLINE,
                      f"Bringing resource {self.service_name} online.")
        while True:
            yield Sleep(self.poll_interval)
            state = scm.query_service_state(self.service_name)
            trace_middleware(ctx, "poll", service=self.service_name,
                             state=None if state is None else state.value)
            if state is ServiceState.RUNNING:
                continue  # LooksAlive: healthy as far as the monitor can tell
            if state in (ServiceState.START_PENDING, ServiceState.STOP_PENDING):
                continue  # the SCM database is locked; check again later
            # The service stopped: attempt a restart.
            trace_middleware(ctx, "detect", service=self.service_name,
                             reason="stopped")
            if self.restart_count >= self.restart_threshold:
                if not self.resource_failed:
                    self.resource_failed = True
                    self._log(machine, EventType.ERROR,
                              EVENT_ID_RESOURCE_FAILED,
                              f"Resource {self.service_name} failed: "
                              f"restart threshold exceeded.")
                    trace_middleware(ctx, "resource-failed",
                                     service=self.service_name)
                continue
            error = scm.start_service(self.service_name)
            if error == ERROR_SUCCESS:
                self.restart_count += 1
                self._log(machine, EventType.WARNING, EVENT_ID_RESTART,
                          f"Restarting resource {self.service_name} "
                          f"(attempt {self.restart_count}).")
                trace_middleware(ctx, "restart", service=self.service_name,
                                 count=self.restart_count)
            elif error == ERROR_SERVICE_ALREADY_RUNNING:
                continue
            # A locked database is retried at the next poll, silently.

    def _log(self, machine, event_type, event_id, message) -> None:
        machine.eventlog.write(machine.engine.now, EVENT_SOURCE, event_type,
                               event_id, message)

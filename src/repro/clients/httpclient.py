"""HttpClient — the synthetic web client of Section 4.

Sends two requests: a 115 kB static page and a 1 kB CGI page.  Each
reply is verified against the expected content checksum; an incorrect
or missing reply is retried after a 15-second wait, at most twice
(three attempts total), exactly as the paper specifies:

    "Both HttpClient and SqlClient check the correctness of the server
    reply.  If the reply is incorrect or if the reply is not received
    within a timeout period (a default of 15 seconds), the request is
    retried.  A second retry is attempted if necessary."
"""

from __future__ import annotations

from ..net.http import HttpRequest, HttpResponse
from ..net.transport import RESET, Side
from ..servers import content
from ..sim import TIMED_OUT, Sleep
from .record import AttemptResult, ClientRecord, RequestRecord

DEFAULT_REPLY_TIMEOUT = 15.0
DEFAULT_RETRY_WAIT = 15.0
DEFAULT_MAX_ATTEMPTS = 3


class HttpClient:
    """httpclient.exe: drives the web-server workloads."""

    image_name = "httpclient.exe"

    def __init__(self, port: int = content.HTTP_PORT,
                 reply_timeout: float = DEFAULT_REPLY_TIMEOUT,
                 retry_wait: float = DEFAULT_RETRY_WAIT,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS):
        self.port = port
        self.reply_timeout = reply_timeout
        self.retry_wait = retry_wait
        self.max_attempts = max_attempts
        expected = content.expected_results()
        self._plan = [
            (HttpRequest(content.STATIC_PATH),
             expected.static_size, expected.static_checksum),
            (HttpRequest(content.CGI_PATH, is_cgi=True),
             expected.cgi_size, expected.cgi_checksum),
        ]
        self.record = ClientRecord()

    def main(self, ctx):
        self.record.started_at = ctx.now
        for request, size, checksum in self._plan:
            request_record = yield from self._issue(ctx, request, size,
                                                    checksum)
            self.record.requests.append(request_record)
        self.record.finished_at = ctx.now

    # ------------------------------------------------------------------
    def _issue(self, ctx, request, expected_size, expected_checksum):
        record = RequestRecord(str(request))
        record.started_at = ctx.now
        transport = ctx.machine.transport
        for attempt in range(1, self.max_attempts + 1):
            connection = yield from transport.connect(
                self.port, ctx.process, timeout=5.0)
            if connection is None:
                record.attempts.append(AttemptResult.REFUSED)
            else:
                # Every exit from the exchange — reply, timeout, reset,
                # even the process being killed mid-receive — must close
                # the connection, or retries pile up half-open sockets
                # (the leak the end-of-run hygiene check now catches).
                try:
                    transport.send(connection, Side.CLIENT, request)
                    reply = yield from transport.recv(
                        connection, Side.CLIENT, timeout=self.reply_timeout)
                finally:
                    transport.close(connection, Side.CLIENT)
                if reply is TIMED_OUT:
                    record.attempts.append(AttemptResult.TIMEOUT)
                elif reply is RESET:
                    record.attempts.append(AttemptResult.RESET)
                elif isinstance(reply, HttpResponse) and \
                        reply.matches(expected_size, expected_checksum):
                    record.attempts.append(AttemptResult.OK)
                    record.succeeded = True
                    record.finished_at = ctx.now
                    return record
                else:
                    record.attempts.append(AttemptResult.INCORRECT)
            if attempt < self.max_attempts:
                yield Sleep(self.retry_wait)
        record.finished_at = ctx.now
        return record

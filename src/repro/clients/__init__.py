"""Synthetic client programs (the workload generators' client half)."""

from .httpclient import HttpClient
from .record import AttemptResult, ClientRecord, RequestRecord
from .sqlclient import SqlClient

__all__ = [
    "HttpClient",
    "SqlClient",
    "ClientRecord",
    "RequestRecord",
    "AttemptResult",
]

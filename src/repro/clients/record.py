"""Client-side result records.

Most DTS results are *client-oriented* (Section 3): the data collector
classifies an injection run primarily from what the client observed —
per-attempt results, retries used, and whether any request ultimately
failed.  These records are that evidence.
"""

from __future__ import annotations

import enum
from typing import Optional


class AttemptResult(enum.Enum):
    OK = "ok"                # correct reply received
    INCORRECT = "incorrect"  # a reply arrived but failed verification
    TIMEOUT = "timeout"      # no reply within the timeout
    RESET = "reset"          # connection torn down (server death)
    REFUSED = "refused"      # could not connect at all

    @property
    def received_response(self) -> bool:
        """Did the server send anything back for this attempt?"""
        return self in (AttemptResult.OK, AttemptResult.INCORRECT)


class RequestRecord:
    """Everything observed while trying to complete one request."""

    def __init__(self, description: str):
        self.description = description
        self.attempts: list[AttemptResult] = []
        self.succeeded = False
        # Virtual-time stamps around the whole request (including every
        # retry), the raw material of the per-client latency
        # distributions the load workloads report.
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    @property
    def latency(self) -> Optional[float]:
        """Wall (virtual) time from first attempt to final outcome."""
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    @property
    def retries_used(self) -> int:
        """Retransmissions beyond the first attempt."""
        return max(0, len(self.attempts) - 1)

    @property
    def any_response_received(self) -> bool:
        return any(a.received_response for a in self.attempts)

    def __repr__(self) -> str:
        marks = ",".join(a.value for a in self.attempts)
        state = "ok" if self.succeeded else "FAILED"
        return f"<Request {self.description} [{marks}] {state}>"


class ClientRecord:
    """The full client program output for one injection run."""

    def __init__(self) -> None:
        self.requests: list[RequestRecord] = []
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    @property
    def all_succeeded(self) -> bool:
        return bool(self.requests) and all(r.succeeded for r in self.requests)

    @property
    def total_retries(self) -> int:
        return sum(r.retries_used for r in self.requests)

    @property
    def any_response_received(self) -> bool:
        return any(r.any_response_received for r in self.requests)

    @property
    def elapsed(self) -> Optional[float]:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    @property
    def completed(self) -> bool:
        """Did the client program itself run to completion?"""
        return self.finished_at is not None

    def __repr__(self) -> str:
        outcome = "ok" if self.all_succeeded else "failed"
        return f"<ClientRecord {len(self.requests)} requests {outcome}>"

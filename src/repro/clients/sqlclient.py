"""SqlClient — the synthetic database client of Section 4.

Sends one SQL SELECT over a single table and verifies the result
checksum, with the same 15-second timeout / 15-second wait / three
attempts discipline as HttpClient.
"""

from __future__ import annotations

from ..net.http import SqlRequest, SqlResponse
from ..net.transport import RESET, Side
from ..servers import content
from ..sim import TIMED_OUT, Sleep
from .httpclient import (
    DEFAULT_MAX_ATTEMPTS,
    DEFAULT_REPLY_TIMEOUT,
    DEFAULT_RETRY_WAIT,
)
from .record import AttemptResult, ClientRecord, RequestRecord


class SqlClient:
    """sqlclient.exe: drives the SQL Server workload."""

    image_name = "sqlclient.exe"

    def __init__(self, port: int = content.SQL_PORT,
                 query: str = content.SQL_QUERY,
                 reply_timeout: float = DEFAULT_REPLY_TIMEOUT,
                 retry_wait: float = DEFAULT_RETRY_WAIT,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS):
        self.port = port
        self.query = query
        self.reply_timeout = reply_timeout
        self.retry_wait = retry_wait
        self.max_attempts = max_attempts
        expected = content.expected_results()
        self._expected_rows = expected.sql_rows
        self._expected_checksum = expected.sql_checksum
        self.record = ClientRecord()

    def main(self, ctx):
        self.record.started_at = ctx.now
        transport = ctx.machine.transport
        record = RequestRecord(f"SQL {self.query!r}")
        record.started_at = ctx.now
        for attempt in range(1, self.max_attempts + 1):
            connection = yield from transport.connect(
                self.port, ctx.process, timeout=5.0)
            if connection is None:
                record.attempts.append(AttemptResult.REFUSED)
            else:
                # Same discipline as HttpClient: no exit path may leave
                # the connection open, including a kill mid-receive.
                try:
                    transport.send(connection, Side.CLIENT,
                                   SqlRequest(self.query))
                    reply = yield from transport.recv(
                        connection, Side.CLIENT, timeout=self.reply_timeout)
                finally:
                    transport.close(connection, Side.CLIENT)
                if reply is TIMED_OUT:
                    record.attempts.append(AttemptResult.TIMEOUT)
                elif reply is RESET:
                    record.attempts.append(AttemptResult.RESET)
                elif isinstance(reply, SqlResponse) and \
                        reply.matches(self._expected_rows,
                                      self._expected_checksum):
                    record.attempts.append(AttemptResult.OK)
                    record.succeeded = True
                    break
                else:
                    record.attempts.append(AttemptResult.INCORRECT)
            if not record.succeeded and attempt < self.max_attempts:
                yield Sleep(self.retry_wait)
        record.finished_at = ctx.now
        self.record.requests.append(record)
        self.record.finished_at = ctx.now

"""Builders for the paper's figures (as data series + text rendering).

- **Figure 2** — normalized outcome distributions per workload ×
  {stand-alone, MSCS, watchd}.
- **Figure 3** — Apache (Apache1+Apache2 weighted by activated faults)
  vs IIS across the three configurations.
- **Figure 4** — mean response time per outcome class with 95 % CIs,
  Apache vs IIS (no-response failures excluded).
- **Figure 5** — Watchd1 vs Watchd2 vs Watchd3 for Apache1, IIS, SQL.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from ..core.campaign import WorkloadSetResult
from ..core.outcomes import ORDERED_OUTCOMES, FailureMode, Outcome
from ..core.workload import MiddlewareKind
from .render import render_stacked_distribution, render_table
from .stats import MeanCI, mean_ci95, proportion

_SHORT_LABEL = {
    Outcome.NORMAL_SUCCESS: "normal",
    Outcome.RESTART_SUCCESS: "restart",
    Outcome.RESTART_RETRY_SUCCESS: "restart+retry",
    Outcome.RETRY_SUCCESS: "retry",
    Outcome.FAILURE: "failure",
}

MIDDLEWARE_ORDER = (MiddlewareKind.NONE, MiddlewareKind.MSCS,
                    MiddlewareKind.WATCHD)


class OutcomeDistribution:
    """Normalized outcome percentages for one workload set."""

    def __init__(self, label: str, activated: int,
                 fractions: Mapping[Outcome, float]):
        self.label = label
        self.activated = activated
        self.fractions = dict(fractions)

    @property
    def failure_fraction(self) -> float:
        return self.fractions[Outcome.FAILURE]

    @property
    def failure_coverage(self) -> float:
        return 1.0 - self.failure_fraction

    @classmethod
    def from_result(cls, label: str,
                    result: WorkloadSetResult) -> "OutcomeDistribution":
        return cls(label, result.activated_count, result.outcome_fractions())

    @classmethod
    def from_runs(cls, label: str, runs: Sequence) -> "OutcomeDistribution":
        total = len(runs)
        fractions = {
            outcome: proportion(
                sum(1 for r in runs if r.outcome is outcome), total)
            for outcome in Outcome
        }
        return cls(label, total, fractions)

    def render(self) -> str:
        pairs = [(_SHORT_LABEL[o], self.fractions[o]) for o in ORDERED_OUTCOMES]
        return (f"{self.label:28s} act={self.activated:4d}  "
                + render_stacked_distribution(pairs))


class Figure2:
    """One distribution per (workload, middleware)."""

    def __init__(self, distributions: Mapping[tuple[str, MiddlewareKind],
                                              OutcomeDistribution]):
        self.distributions = dict(distributions)

    def get(self, workload: str,
            middleware: MiddlewareKind) -> OutcomeDistribution:
        return self.distributions[(workload, middleware)]

    def render(self) -> str:
        lines = ["Figure 2. Standalone/MSCS/watchd comparisons"]
        for workload in ("Apache1", "Apache2", "IIS", "SQL"):
            for middleware in MIDDLEWARE_ORDER:
                dist = self.distributions.get((workload, middleware))
                if dist is not None:
                    lines.append(dist.render())
            lines.append("")
        return "\n".join(lines)


def build_figure2(results: Mapping[tuple[str, MiddlewareKind],
                                   WorkloadSetResult]) -> Figure2:
    return Figure2({
        key: OutcomeDistribution.from_result(
            f"{key[0]} / {key[1].label}", result)
        for key, result in results.items()
    })


# ----------------------------------------------------------------------
# Figure 3: Apache (combined) vs IIS
# ----------------------------------------------------------------------
def combine_apache(apache1: WorkloadSetResult, apache2: WorkloadSetResult,
                   label: str) -> OutcomeDistribution:
    """The paper's combination: "The Apache results are a combination
    of the Apache1 and Apache2 results ... weighted based on the
    relative number of activated faults for each process" — i.e. the
    pooled run set."""
    runs = apache1.activated_runs + apache2.activated_runs
    return OutcomeDistribution.from_runs(label, runs)


class Figure3:
    def __init__(self, apache: Mapping[MiddlewareKind, OutcomeDistribution],
                 iis: Mapping[MiddlewareKind, OutcomeDistribution]):
        self.apache = dict(apache)
        self.iis = dict(iis)

    def failure_pair(self, middleware: MiddlewareKind) -> tuple[float, float]:
        """(apache, iis) failure fractions for one configuration."""
        return (self.apache[middleware].failure_fraction,
                self.iis[middleware].failure_fraction)

    def render(self) -> str:
        lines = ["Figure 3. Comparison of Apache to IIS"]
        for middleware in MIDDLEWARE_ORDER:
            for dist in (self.apache[middleware], self.iis[middleware]):
                lines.append(dist.render())
            lines.append("")
        return "\n".join(lines)


def build_figure3(apache1: Mapping[MiddlewareKind, WorkloadSetResult],
                  apache2: Mapping[MiddlewareKind, WorkloadSetResult],
                  iis: Mapping[MiddlewareKind, WorkloadSetResult]) -> Figure3:
    apache = {
        mw: combine_apache(apache1[mw], apache2[mw],
                           f"Apache / {mw.label}")
        for mw in MIDDLEWARE_ORDER
    }
    iis_dists = {
        mw: OutcomeDistribution.from_result(f"IIS / {mw.label}", iis[mw])
        for mw in MIDDLEWARE_ORDER
    }
    return Figure3(apache, iis_dists)


# ----------------------------------------------------------------------
# Figure 4: response times by outcome class
# ----------------------------------------------------------------------
# Outcome classes of Figure 4: the five of Figure 2, with failures
# subdivided and no-response failures excluded (infinite time).
FIGURE4_CLASSES = (
    (Outcome.NORMAL_SUCCESS, None),
    (Outcome.RESTART_SUCCESS, None),
    (Outcome.RESTART_RETRY_SUCCESS, None),
    (Outcome.RETRY_SUCCESS, None),
    (Outcome.FAILURE, FailureMode.INCORRECT_RESPONSE),
)


def _class_label(outcome: Outcome, mode: Optional[FailureMode]) -> str:
    if mode is FailureMode.INCORRECT_RESPONSE:
        return "failure (incorrect response)"
    return _SHORT_LABEL[outcome]


class Figure4:
    """Mean ± CI response times per (server, middleware, outcome class)."""

    def __init__(self, cells: Mapping[tuple[str, MiddlewareKind, str],
                                      Optional[MeanCI]]):
        self.cells = dict(cells)

    def get(self, server: str, middleware: MiddlewareKind,
            class_label: str) -> Optional[MeanCI]:
        return self.cells.get((server, middleware, class_label))

    def render(self) -> str:
        headers = ["Server", "Middleware", "Outcome class",
                   "Mean resp. time (s)", "95% CI ±", "n"]
        rows = []
        for (server, middleware, label), ci in sorted(
                self.cells.items(),
                key=lambda item: (item[0][0], item[0][1].value, item[0][2])):
            if ci is None:
                rows.append([server, middleware.label, label, "-", "-", "0"])
            else:
                rows.append([server, middleware.label, label,
                             f"{ci.mean:.2f}", f"{ci.half_width:.2f}",
                             str(ci.count)])
        return render_table(
            headers, rows,
            title="Figure 4. Average response times (95% confidence intervals)",
        )


def response_times_by_class(runs) -> dict[str, list[float]]:
    """Group finite response times by Figure-4 outcome class."""
    grouped: dict[str, list[float]] = {}
    for outcome, mode in FIGURE4_CLASSES:
        label = _class_label(outcome, mode)
        times = [
            r.response_time for r in runs
            if r.outcome is outcome and r.response_time is not None
            and (mode is None or r.failure_mode is mode)
        ]
        grouped[label] = times
    return grouped


def build_figure4(apache1: Mapping[MiddlewareKind, WorkloadSetResult],
                  apache2: Mapping[MiddlewareKind, WorkloadSetResult],
                  iis: Mapping[MiddlewareKind, WorkloadSetResult]) -> Figure4:
    cells: dict[tuple[str, MiddlewareKind, str], Optional[MeanCI]] = {}
    for middleware in MIDDLEWARE_ORDER:
        apache_runs = (apache1[middleware].activated_runs
                       + apache2[middleware].activated_runs)
        for server, runs in (("Apache", apache_runs),
                             ("IIS", iis[middleware].activated_runs)):
            for label, times in response_times_by_class(runs).items():
                cells[(server, middleware, label)] = mean_ci95(times)
    return Figure4(cells)


# ----------------------------------------------------------------------
# Figure 5: watchd versions
# ----------------------------------------------------------------------
class Figure5:
    """Outcome distributions per (workload, watchd version)."""

    def __init__(self, distributions: Mapping[tuple[str, int],
                                              OutcomeDistribution]):
        self.distributions = dict(distributions)

    def failure(self, workload: str, version: int) -> float:
        return self.distributions[(workload, version)].failure_fraction

    def render(self) -> str:
        lines = ["Figure 5. Comparison of original to improved watchd"]
        for workload in ("Apache1", "IIS", "SQL"):
            for version in (1, 2, 3):
                dist = self.distributions.get((workload, version))
                if dist is not None:
                    lines.append(dist.render())
            lines.append("")
        return "\n".join(lines)


def build_figure5(results: Mapping[tuple[str, int], WorkloadSetResult]
                  ) -> Figure5:
    return Figure5({
        (workload, version): OutcomeDistribution.from_result(
            f"{workload} / Watchd{version}", result)
        for (workload, version), result in results.items()
    })

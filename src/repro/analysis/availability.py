"""Availability modelling (the paper's Section-5 future-work item).

    "The DTS tool may play a role in providing testing-based parameters
    as input to analytical models that would then be able to yield
    [availability] estimates that are more precise."

This module is that pipeline: campaign results provide the measured
parameters — per-fault failure/recovery behaviour and recovery
latencies — which feed a standard alternating-renewal availability
model:

    A = MTTF / (MTTF + MTTR)

- **MTTR** comes from the measured recovery times: for covered faults,
  the extra latency restarts added over a fault-free run; uncovered
  faults (failure outcomes) incur a manual-repair penalty.
- **MTTF** is supplied as a fault-arrival assumption (faults/hour), the
  one quantity injection cannot measure.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.campaign import WorkloadSetResult
from ..core.outcomes import Outcome
from .stats import mean


class AvailabilityEstimate:
    """Steady-state availability with its model inputs."""

    def __init__(self, availability: float, mttf_hours: float,
                 mttr_hours: float, covered_fraction: float,
                 mean_recovery_seconds: float):
        self.availability = availability
        self.mttf_hours = mttf_hours
        self.mttr_hours = mttr_hours
        self.covered_fraction = covered_fraction
        self.mean_recovery_seconds = mean_recovery_seconds

    @property
    def nines(self) -> float:
        """Number of nines of availability (the industry shorthand)."""
        import math

        if self.availability >= 1.0:
            return float("inf")
        return -math.log10(1.0 - self.availability)

    def __repr__(self) -> str:
        return (f"<Availability {self.availability * 100:.4f}% "
                f"({self.nines:.2f} nines)>")


def estimate_availability(
    result: WorkloadSetResult,
    fault_rate_per_hour: float = 0.1,
    manual_repair_hours: float = 1.0,
    baseline_response_time: Optional[float] = None,
) -> AvailabilityEstimate:
    """Availability from one workload set's measured outcomes.

    ``fault_rate_per_hour`` is the assumed arrival rate of faults of
    the injected class; ``manual_repair_hours`` the operator response
    for failures the middleware did not cover.
    """
    runs = result.activated_runs
    if not runs:
        raise ValueError("no activated runs to estimate from")

    if baseline_response_time is None:
        normal_times = [r.response_time for r in runs
                        if r.outcome is Outcome.NORMAL_SUCCESS
                        and r.response_time is not None]
        baseline_response_time = mean(normal_times) if normal_times else 0.0

    recovery_times: list[float] = []
    uncovered = 0
    for run in runs:
        if run.outcome is Outcome.FAILURE:
            uncovered += 1
        elif run.outcome is Outcome.NORMAL_SUCCESS:
            recovery_times.append(0.0)
        elif run.response_time is not None:
            recovery_times.append(
                max(0.0, run.response_time - baseline_response_time))

    covered = len(runs) - uncovered
    covered_fraction = covered / len(runs)
    mean_recovery = mean(recovery_times) if recovery_times else 0.0

    # Expected downtime per fault: automated recovery for covered
    # faults, operator repair for uncovered ones.
    expected_downtime_hours = (
        covered_fraction * (mean_recovery / 3600.0)
        + (1.0 - covered_fraction) * manual_repair_hours
    )
    mttf_hours = 1.0 / fault_rate_per_hour
    availability = mttf_hours / (mttf_hours + expected_downtime_hours)
    return AvailabilityEstimate(
        availability=availability,
        mttf_hours=mttf_hours,
        mttr_hours=expected_downtime_hours,
        covered_fraction=covered_fraction,
        mean_recovery_seconds=mean_recovery,
    )


def compare_availability(results: Sequence[tuple[str, WorkloadSetResult]],
                         fault_rate_per_hour: float = 0.1,
                         manual_repair_hours: float = 1.0) -> str:
    """Rendered availability comparison across configurations."""
    from .render import render_table

    rows = []
    for label, result in results:
        estimate = estimate_availability(
            result, fault_rate_per_hour, manual_repair_hours)
        rows.append([
            label,
            f"{estimate.covered_fraction * 100:.1f}%",
            f"{estimate.mean_recovery_seconds:.1f}",
            f"{estimate.availability * 100:.4f}%",
            f"{estimate.nines:.2f}",
        ])
    return render_table(
        ["Configuration", "Coverage", "Mean recovery (s)",
         "Availability", "Nines"],
        rows,
        title="Availability estimates (renewal model on DTS measurements)",
    )

"""Failure-coverage summaries (Section 5).

The paper expresses middleware effectiveness as failure coverage —
*"unity minus the percentage of failure outcomes"* — and concludes the
improved watchd achieves >90 % for every tested server program.
"""

from __future__ import annotations

from typing import Mapping

from ..core.campaign import WorkloadSetResult
from ..core.workload import MiddlewareKind
from .render import render_table


class CoverageSummary:
    """Failure coverage per (workload, middleware)."""

    def __init__(self, coverage: Mapping[tuple[str, MiddlewareKind], float]):
        self.coverage = dict(coverage)

    def get(self, workload: str, middleware: MiddlewareKind) -> float:
        return self.coverage[(workload, middleware)]

    def watchd_exceeds(self, threshold: float = 0.9) -> bool:
        """The paper's headline: watchd coverage >90 % everywhere."""
        values = [value for (_w, mw), value in self.coverage.items()
                  if mw is MiddlewareKind.WATCHD]
        return bool(values) and all(value > threshold for value in values)

    def watchd_beats_mscs(self) -> bool:
        """watchd coverage at least matches MSCS for every workload."""
        workloads = {w for (w, _mw) in self.coverage}
        return all(
            self.coverage.get((w, MiddlewareKind.WATCHD), 0.0)
            >= self.coverage.get((w, MiddlewareKind.MSCS), 1.0)
            for w in sorted(workloads)
        )

    def render(self) -> str:
        workloads = sorted({w for (w, _mw) in self.coverage})
        rows = []
        for workload in workloads:
            row = [workload]
            for mw in (MiddlewareKind.NONE, MiddlewareKind.MSCS,
                       MiddlewareKind.WATCHD):
                value = self.coverage.get((workload, mw))
                row.append(f"{value * 100:.1f}%" if value is not None else "-")
            rows.append(row)
        return render_table(
            ["Workload", "Stand-alone", "MSCS", "watchd"], rows,
            title="Failure coverage (1 - failure fraction)",
        )


def build_coverage(results: Mapping[tuple[str, MiddlewareKind],
                                    WorkloadSetResult]) -> CoverageSummary:
    return CoverageSummary({
        key: result.failure_coverage for key, result in results.items()
    })

"""Statistics helpers: means and 95 % confidence intervals.

Figure 4 reports average response times "with corresponding 95%
confidence intervals (shown as error bars)"; these helpers compute the
same quantities with the Student-t critical value (falling back to the
normal approximation for large samples).
"""

from __future__ import annotations

import bisect
import math
from typing import Optional, Sequence

try:  # scipy gives exact t quantiles; the fallback table covers its absence
    from scipy import stats as _scipy_stats
except ImportError:  # pragma: no cover - scipy is a declared dependency
    _scipy_stats = None

# Two-sided 95 % t critical values for small degrees of freedom.
_T_TABLE = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
    7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 12: 2.179, 15: 2.131,
    20: 2.086, 25: 2.060, 30: 2.042, 40: 2.021, 60: 2.000, 120: 1.980,
}
_T_DOFS = tuple(sorted(_T_TABLE))
_T_NORMAL = 1.96  # the dof -> infinity asymptote


def _t_fallback_95(dof: int) -> float:
    """Table-based t critical value used when scipy is unavailable.

    Between table entries the quantile is interpolated in 1/dof, which
    the true t quantile is nearly linear in; above the last table entry
    the same interpolation runs toward the normal asymptote (1/dof = 0).
    Never rounds dof *up* to a larger table entry — that borrows the
    smaller critical value of a bigger sample and narrows the interval.
    """
    value = _T_TABLE.get(dof)
    if value is not None:
        return value
    last = _T_DOFS[-1]
    if dof > last:
        low_dof, low_value = last, _T_TABLE[last]
        high_inv, high_value = 0.0, _T_NORMAL
    else:
        index = bisect.bisect_left(_T_DOFS, dof)
        low_dof, high_dof = _T_DOFS[index - 1], _T_DOFS[index]
        low_value, high_value = _T_TABLE[low_dof], _T_TABLE[high_dof]
        high_inv = 1.0 / high_dof
    frac = (1.0 / low_dof - 1.0 / dof) / (1.0 / low_dof - high_inv)
    return low_value + (high_value - low_value) * frac


def t_critical_95(dof: int) -> float:
    """Two-sided 95 % Student-t critical value."""
    if dof <= 0:
        raise ValueError("need at least two samples for an interval")
    if _scipy_stats is not None:
        return float(_scipy_stats.t.ppf(0.975, dof))
    return _t_fallback_95(dof)


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of no values")
    return sum(values) / len(values)


def sample_std(values: Sequence[float]) -> float:
    """Unbiased (n-1) sample standard deviation."""
    if len(values) < 2:
        return 0.0
    center = mean(values)
    return math.sqrt(sum((v - center) ** 2 for v in values) /
                     (len(values) - 1))


class MeanCI:
    """A sample mean with its 95 % confidence half-width."""

    __slots__ = ("mean", "half_width", "count")

    def __init__(self, mean_value: float, half_width: float, count: int):
        self.mean = mean_value
        self.half_width = half_width
        self.count = count

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def __repr__(self) -> str:
        return f"{self.mean:.2f} ± {self.half_width:.2f} (n={self.count})"


def mean_ci95(values: Sequence[float]) -> Optional[MeanCI]:
    """Mean with 95 % CI, or None for an empty sample.

    A single observation yields a zero-width interval (the paper plots
    singletons without error bars).
    """
    if not values:
        return None
    if len(values) == 1:
        return MeanCI(values[0], 0.0, 1)
    center = mean(values)
    spread = sample_std(values)
    half = t_critical_95(len(values) - 1) * spread / math.sqrt(len(values))
    return MeanCI(center, half, len(values))


def proportion(numerator: int, denominator: int) -> float:
    """A percentage-safe ratio (0.0 when the denominator is zero)."""
    if denominator == 0:
        return 0.0
    return numerator / denominator

"""Plain-text rendering of tables and bar charts.

The benchmark harness prints the same rows/series the paper's tables
and figures report; these helpers keep that output aligned and
readable in a terminal or a log file.
"""

from __future__ import annotations

from typing import Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """A boxless fixed-width table."""
    columns = len(headers)
    cells = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != columns:
            raise ValueError(f"row {row!r} does not match {columns} headers")
        cells.append([_format_cell(value) for value in row])
    widths = [max(len(line[i]) for line in cells) for i in range(columns)]
    out = []
    if title:
        out.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(cells[0]))
    out.append(header_line)
    out.append("  ".join("-" * w for w in widths))
    for line in cells[1:]:
        out.append("  ".join(
            line[i].rjust(widths[i]) if _is_numeric(line[i]) else
            line[i].ljust(widths[i])
            for i in range(columns)
        ))
    return "\n".join(out)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _is_numeric(text: str) -> bool:
    stripped = text.replace("%", "").replace("±", "").replace(".", "") \
        .replace("-", "").replace(" ", "")
    return stripped.isdigit()


def render_bar(fraction: float, width: int = 40, fill: str = "#") -> str:
    """A single horizontal bar scaled to ``width`` characters."""
    filled = round(max(0.0, min(1.0, fraction)) * width)
    return fill * filled + "." * (width - filled)


def render_stacked_distribution(labels_fractions: Sequence[tuple[str, float]],
                                width: int = 50) -> str:
    """One stacked bar (the paper's normalized outcome charts)."""
    symbols = " .:+x#"
    parts = []
    for index, (label, fraction) in enumerate(labels_fractions):
        count = round(fraction * width)
        symbol = symbols[min(index + 1, len(symbols) - 1)]
        parts.append(symbol * count)
    bar = "".join(parts)[:width].ljust(width)
    legend = "  ".join(
        f"{symbols[min(i + 1, len(symbols) - 1)]}={label} {fraction * 100:.1f}%"
        for i, (label, fraction) in enumerate(labels_fractions)
    )
    return f"[{bar}]  {legend}"

"""Figure 4 at scale: response time vs. client count, per middleware.

Figure 4 of the paper plots average client response times with 95 %
confidence error bars for one client per run.  The load generator
makes the client count a free axis; this module aggregates a grid of
:class:`~repro.load.LoadRunResult`\\ s into the scaled-up figure — one
row per (middleware, client count) cell with mean latency, CI
half-width, and request success fraction.

The CI is taken over per-repetition mean latencies (the independent
samples); with a single repetition it falls back to the per-request
sample, flagged in the rendered table, since requests within one run
share the machine and are not independent.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .stats import MeanCI, mean_ci95


class LoadScalePoint:
    """One (middleware, client count) cell of the scaled figure."""

    __slots__ = ("middleware", "clients", "latency", "per_request",
                 "success_fraction", "completed_clients", "reps")

    def __init__(self, middleware: str, clients: int,
                 latency: Optional[MeanCI], per_request: bool,
                 success_fraction: float, completed_clients: float,
                 reps: int):
        self.middleware = middleware
        self.clients = clients
        self.latency = latency
        self.per_request = per_request
        self.success_fraction = success_fraction
        self.completed_clients = completed_clients
        self.reps = reps


def aggregate_load_runs(runs: Sequence) -> list[LoadScalePoint]:
    """Group load runs into figure points, one per middleware/clients.

    Rows come out sorted by middleware label then client count, so the
    rendered table reads as one curve per middleware.
    """
    cells: dict[tuple[str, int], list] = {}
    for run in runs:
        key = (run.spec.middleware.value, run.spec.clients)
        cells.setdefault(key, []).append(run)

    points = []
    for (middleware, clients), cell in sorted(cells.items()):
        rep_means = [run.mean_latency() for run in cell]
        rep_means = [value for value in rep_means if value is not None]
        per_request = False
        if len(rep_means) >= 2:
            latency = mean_ci95(rep_means)
        else:
            # One usable repetition: CI over its requests instead.
            per_request = True
            requests = [latency for run in cell
                        for latency in run.all_latencies()]
            latency = mean_ci95(requests)
        total = sum(run.request_count for run in cell)
        succeeded = sum(run.succeeded_requests for run in cell)
        completed = (sum(run.completed_clients for run in cell) /
                     len(cell))
        points.append(LoadScalePoint(
            middleware=middleware, clients=clients, latency=latency,
            per_request=per_request,
            success_fraction=succeeded / total if total else 0.0,
            completed_clients=completed, reps=len(cell)))
    return points


def render_load_scale(points: Sequence[LoadScalePoint],
                      title: str = "Response time vs. client count "
                                   "(Figure 4 at scale)") -> str:
    """The figure as an aligned text table (also valid Markdown-ish)."""
    lines = [title, ""]
    header = (f"{'middleware':<10} {'clients':>7} {'mean (s)':>9} "
              f"{'95% CI':>12} {'ok':>6} {'done':>7} {'reps':>4}")
    lines.append(header)
    lines.append("-" * len(header))
    for point in points:
        if point.latency is None:
            mean_text, ci_text = "-", "-"
        else:
            mean_text = f"{point.latency.mean:.2f}"
            ci_text = f"±{point.latency.half_width:.2f}"
            if point.per_request:
                ci_text += "*"
        lines.append(
            f"{point.middleware:<10} {point.clients:>7} {mean_text:>9} "
            f"{ci_text:>12} {point.success_fraction:>6.0%} "
            f"{point.completed_clients:>7.1f} {point.reps:>4}")
    if any(point.per_request for point in points):
        lines.append("")
        lines.append("* single repetition: CI over per-request latencies")
    return "\n".join(lines)

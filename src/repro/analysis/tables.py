"""Builders for the paper's tables.

- **Table 1** — number of called KERNEL32.dll functions per workload
  (server program × fault-tolerance middleware).
- **Table 2** — Apache vs IIS restricted to the *common* activated
  faults, with Failure/Restart/Retry percentages per configuration.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from ..core.campaign import WorkloadSetResult
from ..core.outcomes import Outcome
from ..core.workload import MiddlewareKind
from .render import render_table
from .stats import proportion

MIDDLEWARE_ORDER = (MiddlewareKind.NONE, MiddlewareKind.MSCS,
                    MiddlewareKind.WATCHD)
WORKLOAD_ORDER = ("Apache1", "Apache2", "IIS", "SQL")

# The values printed in the paper's Table 1, for comparison columns.
PAPER_TABLE1 = {
    ("Apache1", MiddlewareKind.NONE): 13,
    ("Apache1", MiddlewareKind.MSCS): 17,
    ("Apache1", MiddlewareKind.WATCHD): 13,
    ("Apache2", MiddlewareKind.NONE): 22,
    ("Apache2", MiddlewareKind.MSCS): 24,
    ("Apache2", MiddlewareKind.WATCHD): 22,
    ("IIS", MiddlewareKind.NONE): 76,
    ("IIS", MiddlewareKind.MSCS): 76,
    ("IIS", MiddlewareKind.WATCHD): 70,
    ("SQL", MiddlewareKind.NONE): 71,
    ("SQL", MiddlewareKind.MSCS): 74,
    ("SQL", MiddlewareKind.WATCHD): 70,
}


class Table1:
    """Called-function counts per (workload, middleware)."""

    def __init__(self, counts: Mapping[tuple[str, MiddlewareKind], int]):
        self.counts = dict(counts)

    def count(self, workload: str, middleware: MiddlewareKind) -> Optional[int]:
        return self.counts.get((workload, middleware))

    def matches_paper(self) -> bool:
        return all(self.counts.get(key) == value
                   for key, value in PAPER_TABLE1.items())

    def render(self) -> str:
        rows = []
        for workload in WORKLOAD_ORDER:
            row = [workload]
            for middleware in MIDDLEWARE_ORDER:
                measured = self.counts.get((workload, middleware))
                paper = PAPER_TABLE1.get((workload, middleware))
                row.append(f"{measured if measured is not None else '-'}"
                           f" (paper {paper})")
            rows.append(row)
        return render_table(
            ["Server Program", "None", "MSCS", "watchd"], rows,
            title="Table 1. Number of called KERNEL32.dll functions per workload",
        )


def build_table1(profiles: Mapping[tuple[str, MiddlewareKind], set[str]]
                 ) -> Table1:
    """From called-function sets (profiling runs) to Table 1."""
    return Table1({key: len(functions)
                   for key, functions in profiles.items()})


# ----------------------------------------------------------------------
# Table 2
# ----------------------------------------------------------------------
class Table2Row:
    """One server-program row of Table 2 for one middleware config."""

    def __init__(self, activated: int, failure: float, restart: float,
                 retry: float):
        self.activated = activated
        self.failure = failure
        self.restart = restart
        self.retry = retry

    def as_cells(self) -> list[str]:
        return [str(self.activated), f"{self.failure * 100:.1f}%",
                f"{self.restart * 100:.1f}%", f"{self.retry * 100:.1f}%"]


class Table2:
    """Apache vs IIS on the common activated-fault set."""

    def __init__(self, rows: Mapping[str, Mapping[MiddlewareKind, Table2Row]],
                 common_fault_count: int):
        self.rows = {name: dict(by_mw) for name, by_mw in rows.items()}
        self.common_fault_count = common_fault_count

    def row(self, server: str, middleware: MiddlewareKind) -> Table2Row:
        return self.rows[server][middleware]

    def render(self) -> str:
        headers = ["Server Program"]
        for middleware in MIDDLEWARE_ORDER:
            label = middleware.label
            headers += [f"{label} Act", f"{label} Fail", f"{label} Restart",
                        f"{label} Retry"]
        body = []
        for server in ("Apache1", "Apache2", "Apache1+Apache2", "IIS"):
            if server not in self.rows:
                continue
            cells = [server]
            for middleware in MIDDLEWARE_ORDER:
                cells += self.rows[server][middleware].as_cells()
            body.append(cells)
        return render_table(
            headers, body,
            title="Table 2. Comparison of Apache to IIS counting only common faults",
        )


def _summarise(runs) -> Table2Row:
    activated = len(runs)
    failures = sum(1 for r in runs if r.outcome is Outcome.FAILURE)
    restarts = sum(1 for r in runs if r.outcome.involves_restart)
    retries = sum(1 for r in runs if r.outcome.involves_retry)
    return Table2Row(
        activated,
        proportion(failures, activated),
        proportion(restarts, activated),
        proportion(retries, activated),
    )


def common_fault_keys(*result_groups: Sequence[WorkloadSetResult]) -> set:
    """Fault keys activated in *every* given group of workload sets.

    Each group is the set of results for one server program; for the
    Apache side, Apache1 and Apache2 results together constitute the
    program's activated set (their union), mirroring the paper's
    treatment of the two processes as one application.
    """
    per_group = []
    for group in result_groups:
        keys: set = set()
        for result in group:
            keys |= {run.fault.key for run in result.activated_runs}
        per_group.append(keys)
    common = per_group[0]
    for keys in per_group[1:]:
        common &= keys
    return common


def build_table2(apache1: Mapping[MiddlewareKind, WorkloadSetResult],
                 apache2: Mapping[MiddlewareKind, WorkloadSetResult],
                 iis: Mapping[MiddlewareKind, WorkloadSetResult]) -> Table2:
    """Assemble Table 2 from the three programs' workload-set results."""
    common = common_fault_keys(
        list(apache1.values()) + list(apache2.values()),
        list(iis.values()),
    )
    rows: dict[str, dict[MiddlewareKind, Table2Row]] = {
        "Apache1": {}, "Apache2": {}, "Apache1+Apache2": {}, "IIS": {},
    }
    for middleware in MIDDLEWARE_ORDER:
        a1_runs = apache1[middleware].runs_for_fault_keys(common)
        a2_runs = apache2[middleware].runs_for_fault_keys(common)
        rows["Apache1"][middleware] = _summarise(a1_runs)
        rows["Apache2"][middleware] = _summarise(a2_runs)
        rows["Apache1+Apache2"][middleware] = _summarise(a1_runs + a2_runs)
        rows["IIS"][middleware] = _summarise(
            iis[middleware].runs_for_fault_keys(common))
    return Table2(rows, len(common))

"""EXPERIMENTS.md generation: paper-vs-measured for every artifact.

The report states, per table/figure, what the paper reports, what this
reproduction measures, and whether the *shape* claims hold (absolute
numbers are not expected to transfer from a 1999 testbed to a
simulator; the qualitative orderings and ratios are the reproduction
criteria, per DESIGN.md).
"""

from __future__ import annotations

from ..core.workload import MiddlewareKind
from ..trace import derive_metrics, mean
from .experiment import ExperimentSuite

_NONE = MiddlewareKind.NONE
_MSCS = MiddlewareKind.MSCS
_WATCHD = MiddlewareKind.WATCHD


def _pct(value: float) -> str:
    return f"{value * 100:.1f}%"


class ShapeCheck:
    """One qualitative claim from the paper, verified against data."""

    def __init__(self, claim: str, holds: bool, evidence: str):
        self.claim = claim
        self.holds = holds
        self.evidence = evidence

    def render(self) -> str:
        mark = "HOLDS" if self.holds else "DEVIATES"
        return f"- [{mark}] {self.claim}\n  measured: {self.evidence}"


def shape_checks(suite: ExperimentSuite) -> list[ShapeCheck]:
    """The paper's headline qualitative claims."""
    checks: list[ShapeCheck] = []
    grid = suite.figure2_grid()
    figure3 = suite.figure3()
    figure5 = suite.figure5()
    coverage = suite.coverage()

    def fail(workload, middleware):
        return grid[(workload, middleware)].failure_fraction

    # Table 1 exactness.
    checks.append(ShapeCheck(
        "Table 1: called-function counts match the paper exactly",
        suite.table1().matches_paper(),
        ", ".join(f"{w}:{len(suite.profile(w, m))}"
                  for w in ("Apache1", "Apache2", "IIS", "SQL")
                  for m in (_NONE,)),
    ))

    # Figure 2 claims.
    for workload in ("Apache1", "IIS", "SQL"):
        checks.append(ShapeCheck(
            f"Fig 2: MSCS and watchd markedly reduce {workload} failures",
            fail(workload, _MSCS) < 0.6 * fail(workload, _NONE)
            and fail(workload, _WATCHD) < 0.6 * fail(workload, _NONE),
            f"{workload}: none {_pct(fail(workload, _NONE))}, "
            f"MSCS {_pct(fail(workload, _MSCS))}, "
            f"watchd {_pct(fail(workload, _WATCHD))}",
        ))
    checks.append(ShapeCheck(
        "Fig 2: middleware has no effect on Apache2 (the master already "
        "restarts its child)",
        abs(fail("Apache2", _MSCS) - fail("Apache2", _NONE)) < 0.05
        and abs(fail("Apache2", _WATCHD) - fail("Apache2", _NONE)) < 0.05,
        f"Apache2 failures: none {_pct(fail('Apache2', _NONE))}, "
        f"MSCS {_pct(fail('Apache2', _MSCS))}, "
        f"watchd {_pct(fail('Apache2', _WATCHD))}",
    ))
    checks.append(ShapeCheck(
        "Fig 2 / conclusion: watchd's failure coverage is higher than "
        "MSCS's for every server program",
        coverage.watchd_beats_mscs(),
        "; ".join(
            f"{w}: MSCS {_pct(1 - fail(w, _MSCS))} vs "
            f"watchd {_pct(1 - fail(w, _WATCHD))}"
            for w in ("Apache1", "Apache2", "IIS", "SQL")),
    ))
    checks.append(ShapeCheck(
        "Conclusion: improved watchd exhibits >90% failure coverage for "
        "all tested server programs",
        coverage.watchd_exceeds(0.9),
        "; ".join(f"{w}: {_pct(1 - fail(w, _WATCHD))}"
                  for w in ("Apache1", "Apache2", "IIS", "SQL")),
    ))

    # Figure 3 claims.
    apache_none, iis_none = figure3.failure_pair(_NONE)
    apache_watchd, iis_watchd = figure3.failure_pair(_WATCHD)
    checks.append(ShapeCheck(
        "Fig 3: stand-alone IIS fails about twice as often as Apache "
        "(paper: 41.90% vs 20.58%)",
        1.5 <= iis_none / max(apache_none, 1e-9) <= 2.7,
        f"Apache {_pct(apache_none)} vs IIS {_pct(iis_none)} "
        f"(ratio {iis_none / max(apache_none, 1e-9):.2f})",
    ))
    checks.append(ShapeCheck(
        "Fig 3: with watchd the Apache-IIS gap narrows "
        "(paper: 5.80% vs 7.60%)",
        (iis_watchd - apache_watchd) < (iis_none - apache_none) / 2,
        f"Apache {_pct(apache_watchd)} vs IIS {_pct(iis_watchd)}",
    ))

    # Figure 4 claims.
    figure4 = suite.figure4()
    apache_normal = figure4.get("Apache", _NONE, "normal")
    iis_normal = figure4.get("IIS", _NONE, "normal")
    checks.append(ShapeCheck(
        "Fig 4: for normal-success outcomes Apache is faster than IIS "
        "(paper: 14.21s vs 18.94s)",
        apache_normal is not None and iis_normal is not None
        and apache_normal.mean < iis_normal.mean,
        f"Apache {apache_normal.mean:.2f}s vs IIS {iis_normal.mean:.2f}s",
    ))
    apache_restart = figure4.get("Apache", _WATCHD, "restart")
    iis_restart = figure4.get("IIS", _WATCHD, "restart")
    checks.append(ShapeCheck(
        "Fig 4: restart outcomes are slower for Apache than IIS (the SCM "
        "Start-Pending lock makes Apache restarts wait)",
        apache_restart is not None and iis_restart is not None
        and apache_restart.mean > iis_restart.mean,
        "Apache restart "
        + (f"{apache_restart.mean:.2f}s" if apache_restart else "n/a")
        + " vs IIS restart "
        + (f"{iis_restart.mean:.2f}s" if iis_restart else "n/a")
        + " (under watchd)",
    ))

    # Figure 5 claims.
    checks.append(ShapeCheck(
        "Fig 5: Watchd2 failures for Apache1 actually increased over "
        "Watchd1",
        figure5.failure("Apache1", 2) > figure5.failure("Apache1", 1),
        f"Apache1: v1 {_pct(figure5.failure('Apache1', 1))} -> "
        f"v2 {_pct(figure5.failure('Apache1', 2))}",
    ))
    checks.append(ShapeCheck(
        "Fig 5: Watchd2 dramatically improved IIS; Watchd3 left IIS "
        "unchanged",
        figure5.failure("IIS", 2) < 0.5 * figure5.failure("IIS", 1)
        and abs(figure5.failure("IIS", 3) - figure5.failure("IIS", 2)) < 0.02,
        f"IIS: v1 {_pct(figure5.failure('IIS', 1))} -> "
        f"v2 {_pct(figure5.failure('IIS', 2))} -> "
        f"v3 {_pct(figure5.failure('IIS', 3))}",
    ))
    checks.append(ShapeCheck(
        "Fig 5: SQL unchanged between Watchd1 and Watchd2, dramatically "
        "improved by Watchd3",
        abs(figure5.failure("SQL", 2) - figure5.failure("SQL", 1)) < 0.05
        and figure5.failure("SQL", 3) < 0.3 * figure5.failure("SQL", 2),
        f"SQL: v1 {_pct(figure5.failure('SQL', 1))} -> "
        f"v2 {_pct(figure5.failure('SQL', 2))} -> "
        f"v3 {_pct(figure5.failure('SQL', 3))}",
    ))
    checks.append(ShapeCheck(
        "Fig 5 / Fig 2: Watchd3 is much better than MSCS for Apache1, "
        "IIS and SQL",
        all(figure5.failure(w, 3) <= fail(w, _MSCS)
            for w in ("Apache1", "IIS", "SQL")),
        "; ".join(f"{w}: v3 {_pct(figure5.failure(w, 3))} vs "
                  f"MSCS {_pct(fail(w, _MSCS))}"
                  for w in ("Apache1", "IIS", "SQL")),
    ))
    return checks


def detection_latency_lines(suite: ExperimentSuite) -> list[str]:
    """Mean detection / restart latencies per workload set, measured
    from trace events — only available when the suite ran with tracing
    at ``outcome`` level or above (untraced suites return ``[]``).
    """
    rows = []
    for (workload, middleware), result in sorted(
            suite.figure2_grid().items(),
            key=lambda item: (item[0][0], item[0][1].value)):
        if middleware is _NONE:
            continue
        metrics = [derive_metrics(run.trace)
                   for run in result.activated_runs if run.trace]
        if not metrics:
            continue
        ttd = mean(m.time_to_detection for m in metrics
                   if m.time_to_detection is not None)
        ttr = mean(m.time_to_restart for m in metrics
                   if m.time_to_restart is not None)
        detected = sum(1 for m in metrics if m.detected_at is not None)
        rows.append(
            f"| {workload} | {middleware.label} | {len(metrics)} "
            f"| {detected} "
            f"| {'n/a' if ttd is None else f'{ttd:.2f} s'} "
            f"| {'n/a' if ttr is None else f'{ttr:.2f} s'} |")
    if not rows:
        return []
    return [
        "## Detection and restart latency (traced runs)",
        "",
        "Measured from the structured trace: activation -> first "
        "`mw.detect` (time to detection) and detection -> service "
        "running again (time to restart).  Means over activated, "
        "traced runs.",
        "",
        "| workload | middleware | traced | detected | mean TTD "
        "| mean TTR |",
        "|---|---|---|---|---|---|",
        *rows,
        "",
    ]


def generate_experiments_report(suite: ExperimentSuite) -> str:
    """The full EXPERIMENTS.md content."""
    checks = shape_checks(suite)
    held = sum(1 for c in checks if c.holds)
    parts = [
        "# EXPERIMENTS — paper vs measured",
        "",
        "Generated by `python examples/reproduce_paper.py --write-report`.",
        "",
        "Absolute percentages are not expected to match a 1999 NT testbed;",
        "the reproduction criteria are the paper's qualitative claims",
        "(orderings, ratios, crossovers).  Summary: "
        f"**{held}/{len(checks)} shape claims hold**.",
        "",
        "## Shape claims",
        "",
    ]
    parts.extend(check.render() for check in checks)
    parts += [
        "",
        "## Table 1 (exact reproduction target)",
        "",
        "```",
        suite.table1().render(),
        "```",
        "",
        "## Figure 2 — outcome distributions",
        "",
        "```",
        suite.figure2().render(),
        "```",
        "",
        "## Figure 3 — Apache vs IIS",
        "",
        "```",
        suite.figure3().render(),
        "```",
        "",
        "## Table 2 — common activated faults",
        "",
        "```",
        suite.table2().render(),
        "```",
        "",
        "## Figure 4 — response times",
        "",
        "Paper anchors: Apache normal-success 14.21 s vs IIS 18.94 s;",
        "restart outcomes slower for Apache than IIS.",
        "",
        "```",
        suite.figure4().render(),
        "```",
        "",
        "## Figure 5 — watchd iterations",
        "",
        "```",
        suite.figure5().render(),
        "```",
        "",
        *detection_latency_lines(suite),
        "## Failure coverage (Section 5)",
        "",
        "```",
        suite.coverage().render(),
        "```",
        "",
        "## Known deviations",
        "",
        "- Apache1's *full-set* stand-alone failure fraction (~47%) is "
        "higher than Table 2's common-fault 20%; the paper's Figure 2 "
        "value for Apache1 is not legible in the scanned original.  The "
        "combined Apache figure (Fig. 3) matches the paper's 20.58%.",
        "- watchd's liveness probe recovers the two Apache2 hang faults, "
        "so watchd shows a small effect on Apache2 where the paper "
        "reports none.",
        "- `Watchd1` is substantially (not \"slightly\") worse than MSCS "
        "here, because MSCS's polling recovers almost all early deaths "
        "the v1 getServiceInfo race loses.",
        "- The MSCS-vs-Apache/IIS failure ratio under MSCS is larger "
        "than the paper's ~2x: the simulated Apache master recovers its "
        "child so effectively that almost no Apache faults are left for "
        "MSCS to miss.",
    ]
    return "\n".join(parts) + "\n"

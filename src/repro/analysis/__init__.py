"""Result analysis: statistics, the paper's tables and figures,
failure coverage, and the availability-modelling extension."""

from .availability import (
    AvailabilityEstimate,
    compare_availability,
    estimate_availability,
)
from .coverage import CoverageSummary, build_coverage
from .fault_families import (
    FAMILY_MECHANISMS,
    FAMILY_ORDER,
    FamilyComparison,
    build_family_comparison,
    build_family_comparison_from_runs,
    family_of,
    split_runs_by_family,
)
from .figures import (
    Figure2,
    Figure3,
    Figure4,
    Figure5,
    OutcomeDistribution,
    build_figure2,
    build_figure3,
    build_figure4,
    build_figure5,
    combine_apache,
    response_times_by_class,
)
from .render import render_bar, render_stacked_distribution, render_table
from .stats import MeanCI, mean, mean_ci95, proportion, sample_std, t_critical_95
from .tables import (
    PAPER_TABLE1,
    Table1,
    Table2,
    build_table1,
    build_table2,
    common_fault_keys,
)

__all__ = [
    "MeanCI",
    "mean",
    "mean_ci95",
    "sample_std",
    "t_critical_95",
    "proportion",
    "Table1",
    "Table2",
    "build_table1",
    "build_table2",
    "common_fault_keys",
    "PAPER_TABLE1",
    "Figure2",
    "Figure3",
    "Figure4",
    "Figure5",
    "OutcomeDistribution",
    "build_figure2",
    "build_figure3",
    "build_figure4",
    "build_figure5",
    "combine_apache",
    "response_times_by_class",
    "CoverageSummary",
    "build_coverage",
    "FAMILY_MECHANISMS",
    "FAMILY_ORDER",
    "FamilyComparison",
    "build_family_comparison",
    "build_family_comparison_from_runs",
    "family_of",
    "split_runs_by_family",
    "AvailabilityEstimate",
    "estimate_availability",
    "compare_availability",
    "render_table",
    "render_bar",
    "render_stacked_distribution",
]

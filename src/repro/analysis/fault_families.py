"""Figure-2-style outcome distributions split by fault family.

The paper's Figure 2 normalizes outcomes over the *activated* runs of
one parameter-corruption campaign.  With the sustained fault families
(:mod:`repro.core.windowed`) the same workload can be measured under
several fault spaces; this module lines their distributions up so the
families are directly comparable — how a server that degrades
gracefully under corrupted arguments behaves when the disk fills up or
its allocator starts failing is exactly the comparison the
resource-exhaustion extension exists to make.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from ..core.campaign import WorkloadSetResult
from ..core.faults import IoFault, ResourceFault
from .figures import OutcomeDistribution

# CLI family name → campaign mechanism.
FAMILY_MECHANISMS = {
    "param": "parameter",
    "return": "return",
    "io": "io",
    "resource": "resource",
}

# Canonical presentation order (the paper's mechanism first).
FAMILY_ORDER = ("param", "return", "io", "resource")

_FAMILY_LABELS = {
    "param": "parameter corruption",
    "return": "return-value corruption",
    "io": "I/O-path faults",
    "resource": "resource exhaustion",
}


def family_of(fault) -> Optional[str]:
    """The family name a fault spec belongs to (None for profile)."""
    if fault is None:
        return None
    if isinstance(fault, IoFault):
        return "io"
    if isinstance(fault, ResourceFault):
        return "resource"
    # Late import: return_injector pulls in the runner stack.
    from ..core.return_injector import ReturnFaultSpec

    if isinstance(fault, ReturnFaultSpec):
        return "return"
    return "param"


class FamilyComparison:
    """Per-family outcome distributions for one workload set label."""

    def __init__(self, label: str,
                 distributions: Mapping[str, OutcomeDistribution]):
        self.label = label
        self.distributions = dict(distributions)

    def get(self, family: str) -> OutcomeDistribution:
        return self.distributions[family]

    @property
    def families(self) -> list[str]:
        return [family for family in FAMILY_ORDER
                if family in self.distributions]

    def render(self) -> str:
        lines = [f"Outcome distributions by fault family — {self.label}"]
        for family in self.families:
            lines.append(self.distributions[family].render())
        return "\n".join(lines)


def build_family_comparison(
        label: str,
        results: Mapping[str, WorkloadSetResult]) -> FamilyComparison:
    """``results`` maps family name → its workload-set result."""
    distributions = {
        family: OutcomeDistribution.from_result(
            _FAMILY_LABELS.get(family, family), result)
        for family, result in results.items()
    }
    return FamilyComparison(label, distributions)


def split_runs_by_family(runs: Sequence) -> dict[str, list]:
    """Partition a mixed run list (e.g. a shared store's contents) by
    fault family, dropping profile runs."""
    grouped: dict[str, list] = {}
    for run in runs:
        family = family_of(run.fault)
        if family is None:
            continue
        grouped.setdefault(family, []).append(run)
    return grouped


def build_family_comparison_from_runs(label: str,
                                      runs: Sequence) -> FamilyComparison:
    """Family comparison over a mixed run list; only activated runs
    count, mirroring Figure 2's normalization."""
    distributions = {}
    for family, group in split_runs_by_family(runs).items():
        activated = [r for r in group if r.counts_for_statistics]
        distributions[family] = OutcomeDistribution.from_runs(
            _FAMILY_LABELS.get(family, family), activated)
    return FamilyComparison(label, distributions)

"""The full paper experiment: every workload set, every artifact.

One :class:`ExperimentSuite` runs (lazily, with caching) the complete
grid of Section 4:

- Figure 2 / Figure 3 / Figure 4 / Table 2 share the 4 workloads ×
  3 middleware configurations (watchd at version 3);
- Figure 5 adds watchd versions 1 and 2 for Apache1, IIS and SQL;
- Table 1 uses fault-free profiling runs.

The suite is what the per-table/per-figure benchmarks and the
``reproduce_paper`` example drive.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..core.campaign import Campaign, WorkloadSetResult, profile_workload
from ..core.runner import RunConfig
from ..core.workload import MiddlewareKind
from .coverage import CoverageSummary, build_coverage
from .figures import (
    Figure2,
    Figure3,
    Figure4,
    Figure5,
    build_figure2,
    build_figure3,
    build_figure4,
    build_figure5,
)
from .tables import Table1, Table2, build_table1, build_table2

WORKLOADS = ("Apache1", "Apache2", "IIS", "SQL")
MIDDLEWARE = (MiddlewareKind.NONE, MiddlewareKind.MSCS, MiddlewareKind.WATCHD)
FIGURE5_WORKLOADS = ("Apache1", "IIS", "SQL")


class ExperimentSuite:
    """Caching driver for the whole experiment grid.

    ``backend`` (an :class:`~repro.core.exec.ExecutionBackend`) is
    shared across every workload set — pass a
    :class:`~repro.core.exec.ProcessPoolBackend` to run the grid on a
    warm worker pool; the caller owns its lifecycle.  ``store`` (a
    :class:`~repro.core.store.RunStore`) checkpoints every run, so
    artifacts sharing campaign slices (Figures 2–4, Table 2) re-execute
    nothing across suites or even across processes.
    """

    def __init__(self, base_seed: int = 2000,
                 log: Optional[Callable[[str], None]] = None,
                 backend=None, store=None, trace_level="off"):
        self.base_seed = base_seed
        self.trace_level = trace_level
        self._log = log or (lambda message: None)
        self.backend = backend
        self.store = store
        self._sets: dict[tuple[str, MiddlewareKind, int], WorkloadSetResult] = {}
        self._profiles: dict[tuple[str, MiddlewareKind], set[str]] = {}

    # ------------------------------------------------------------------
    # Workload-set access (cached)
    # ------------------------------------------------------------------
    def config(self, watchd_version: int = 3) -> RunConfig:
        return RunConfig(base_seed=self.base_seed,
                         watchd_version=watchd_version,
                         trace_level=self.trace_level)

    def workload_set(self, workload: str, middleware: MiddlewareKind,
                     watchd_version: int = 3) -> WorkloadSetResult:
        key = (workload, middleware, watchd_version)
        if key not in self._sets:
            self._log(f"running workload set {workload}/{middleware.value}"
                      f"/v{watchd_version} ...")
            campaign = Campaign(workload, middleware,
                                config=self.config(watchd_version),
                                backend=self.backend, store=self.store)
            self._sets[key] = campaign.run()
        return self._sets[key]

    def profile(self, workload: str,
                middleware: MiddlewareKind) -> set[str]:
        key = (workload, middleware)
        if key not in self._profiles:
            self._log(f"profiling {workload}/{middleware.value} ...")
            self._profiles[key] = profile_workload(
                workload, middleware, config=self.config())
        return self._profiles[key]

    # ------------------------------------------------------------------
    # Grids
    # ------------------------------------------------------------------
    def figure2_grid(self) -> dict[tuple[str, MiddlewareKind],
                                   WorkloadSetResult]:
        return {
            (workload, middleware): self.workload_set(workload, middleware)
            for workload in WORKLOADS
            for middleware in MIDDLEWARE
        }

    def per_middleware(self, workload: str) -> dict[MiddlewareKind,
                                                    WorkloadSetResult]:
        return {middleware: self.workload_set(workload, middleware)
                for middleware in MIDDLEWARE}

    def figure5_grid(self) -> dict[tuple[str, int], WorkloadSetResult]:
        return {
            (workload, version): self.workload_set(
                workload, MiddlewareKind.WATCHD, version)
            for workload in FIGURE5_WORKLOADS
            for version in (1, 2, 3)
        }

    # ------------------------------------------------------------------
    # Artifacts
    # ------------------------------------------------------------------
    def table1(self) -> Table1:
        return build_table1({
            (workload, middleware): self.profile(workload, middleware)
            for workload in WORKLOADS
            for middleware in MIDDLEWARE
        })

    def table2(self) -> Table2:
        return build_table2(self.per_middleware("Apache1"),
                            self.per_middleware("Apache2"),
                            self.per_middleware("IIS"))

    def figure2(self) -> Figure2:
        return build_figure2(self.figure2_grid())

    def figure3(self) -> Figure3:
        return build_figure3(self.per_middleware("Apache1"),
                             self.per_middleware("Apache2"),
                             self.per_middleware("IIS"))

    def figure4(self) -> Figure4:
        return build_figure4(self.per_middleware("Apache1"),
                             self.per_middleware("Apache2"),
                             self.per_middleware("IIS"))

    def figure5(self) -> Figure5:
        return build_figure5(self.figure5_grid())

    def coverage(self) -> CoverageSummary:
        return build_coverage(self.figure2_grid())

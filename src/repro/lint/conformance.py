"""Signature conformance: implementations and call sites vs the registry.

The fault space *is* the export table — the campaign enumerates
``REGISTRY`` exactly the way DTS enumerated ``KERNEL32.dll``.  Any code
that registers an implementation for a name the table does not export,
reads a parameter index the signature does not declare, or calls an
export that does not exist has silently drifted out of the fault space:
the injector can never corrupt what the signature does not describe.
This rule pins all three down statically:

- every ``@k32impl("Name")`` / ``@libcimpl("name")`` registration must
  name a registry export;
- inside an implementation, ``frame.<accessor>(i)`` with a literal
  index must stay below the export's declared arity;
- every ``k32.Name(...)`` / ``libc.name(...)`` call site must name a
  registry export and pass exactly the declared number of arguments;
- nothing outside the kernel32 package may import ``impl_*`` modules
  or call ``IMPLEMENTATIONS[...]`` directly — every simulated call must
  dispatch through the interception layer (``ctx.k32``), or the fault
  injector never sees it.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..nt.kernel32.signatures import REGISTRY
from ..posix.libc import LIBC_REGISTRY
from .core import (
    Finding,
    ParsedModule,
    Rule,
    iter_functions,
    sim_api_call,
    suggest,
    walk_in_scope,
)

RULE = "signature-conformance"

# Frame methods whose first argument is a parameter index (runtime.Frame).
FRAME_INDEX_ACCESSORS = frozenset({
    "arg", "uint", "boolean", "timeout_seconds", "pointer", "opt_pointer",
    "string", "opt_string", "buffer", "opt_buffer", "out_cell",
    "opt_out_cell", "out_sink", "handle_value", "handle_object",
    "process_handle",
})

_IMPL_DECORATORS = {"k32impl": REGISTRY, "libcimpl": LIBC_REGISTRY}
_API_REGISTRIES = {"k32": REGISTRY, "libc": LIBC_REGISTRY}


def _impl_registration(fn: ast.FunctionDef):
    """The ``(decorator_name, export_name, line)`` of an impl function."""
    for decorator in fn.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        func = decorator.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None)
        if name in _IMPL_DECORATORS and decorator.args:
            arg = decorator.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                return name, arg.value, decorator.lineno
    return None


def _in_kernel32_package(path: str) -> bool:
    return "nt/kernel32/" in path


def _in_libc_module(path: str) -> bool:
    return path.endswith("posix/libc.py")


class SignatureConformanceRule(Rule):
    name = RULE
    description = ("implementations and call sites must match the export "
                   "registry and dispatch through the interception layer")

    # ------------------------------------------------------------------
    def check_module(self, module: ParsedModule) -> Iterable[Finding]:
        findings: list[Finding] = []
        for qualname, fn in iter_functions(module.tree):
            registration = _impl_registration(fn)
            if registration is not None:
                findings.extend(self._check_impl(module, qualname, fn,
                                                 registration))
            findings.extend(self._check_call_sites(module, qualname, fn))
        findings.extend(self._check_dispatch_bypass(module))
        return findings

    # ------------------------------------------------------------------
    # Implementation registrations
    # ------------------------------------------------------------------
    def _check_impl(self, module: ParsedModule, qualname: str,
                    fn: ast.FunctionDef, registration) -> Iterator[Finding]:
        decorator, export, line = registration
        registry = _IMPL_DECORATORS[decorator]
        sig = registry.get(export)
        if sig is None:
            yield Finding(
                RULE, module.path, line,
                f"@{decorator} registers implementation for unknown export "
                f"{export!r}{suggest(export, registry)}",
                symbol=qualname)
            return
        if not fn.args.args:
            return
        frame_param = fn.args.args[0].arg
        for node in walk_in_scope(fn):
            index = self._frame_index_access(node, frame_param)
            if index is not None and index >= sig.param_count:
                yield Finding(
                    RULE, module.path, node.lineno,
                    f"implementation of {export} reads parameter index "
                    f"{index} but the signature declares only "
                    f"{sig.param_count} parameter(s)",
                    symbol=qualname)

    @staticmethod
    def _frame_index_access(node: ast.AST, frame_param: str):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == frame_param
                and node.func.attr in FRAME_INDEX_ACCESSORS
                and node.args):
            return None
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, int):
            return first.value
        return None

    # ------------------------------------------------------------------
    # Call sites
    # ------------------------------------------------------------------
    def _check_call_sites(self, module: ParsedModule, qualname: str,
                          fn: ast.FunctionDef) -> Iterator[Finding]:
        for node in walk_in_scope(fn):
            matched = sim_api_call(node)
            if matched is None:
                continue
            api, name, call = matched
            registry = _API_REGISTRIES[api]
            sig = registry.get(name)
            if sig is None:
                yield Finding(
                    RULE, module.path, call.lineno,
                    f"call to unknown {api} export {name!r}"
                    f"{suggest(name, registry)}",
                    symbol=qualname)
                continue
            if any(isinstance(arg, ast.Starred) for arg in call.args) or \
                    any(kw.arg is None for kw in call.keywords):
                continue  # *args / **kwargs: arity not statically known
            got = len(call.args) + len(call.keywords)
            if got != sig.param_count:
                yield Finding(
                    RULE, module.path, call.lineno,
                    f"{name} takes {sig.param_count} argument(s), call "
                    f"passes {got}",
                    symbol=qualname)

    # ------------------------------------------------------------------
    # Interception-layer bypass
    # ------------------------------------------------------------------
    def _check_dispatch_bypass(self, module: ParsedModule) -> Iterator[Finding]:
        if _in_kernel32_package(module.path) or _in_libc_module(module.path):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                source = node.module or ""
                imports_impl = "kernel32.impl_" in source or (
                    source.endswith("kernel32") and any(
                        alias.name.startswith("impl_")
                        for alias in node.names))
                if node.level and source.startswith("impl_"):
                    imports_impl = True
                if imports_impl:
                    yield Finding(
                        RULE, module.path, node.lineno,
                        "imports a kernel32 implementation module directly; "
                        "simulated calls must dispatch through the "
                        "interception layer (ctx.k32)")
            elif isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Subscript):
                target = node.func.value
                subscripted = target.id if isinstance(target, ast.Name) else (
                    target.attr if isinstance(target, ast.Attribute) else "")
                if subscripted in ("IMPLEMENTATIONS", "LIBC_IMPLEMENTATIONS"):
                    yield Finding(
                        RULE, module.path, node.lineno,
                        f"calls {subscripted}[...] directly, bypassing the "
                        "interception layer")

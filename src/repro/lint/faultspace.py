"""Fault-space validator: fault lists and inline FaultSpecs, statically.

A campaign is only as good as its fault list.  ``repro run`` already
validates fault-list files when it loads them — but that is mid-setup,
after the operator walked away; the paper's 3,306-run campaigns took
days, so a typo'd export name on line 2,900 is an expensive way to
learn about drift.  This pass front-loads every check the loader
performs, as lint findings instead of a runtime exception:

- fault-list files (``*.lst``/``*.flt``/``*.faults``): each line must
  parse, name a registry export, corrupt a parameter the signature
  declares, use a legal fault type, and target invocation >= 1;
- inline ``FaultSpec(...)`` constructions and
  ``FaultSpec.from_line("...")`` literals in Python source get the
  same treatment wherever the arguments are compile-time constants.

Dynamic constructions (variables, f-strings) are skipped — the runtime
validation still owns those.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional

from ..core.faults import FaultType, FaultWindow, IoFault, ResourceFault
from ..nt.kernel32.signatures import REGISTRY
from .core import FaultListFile, Finding, ParsedModule, Rule, iter_functions, suggest, walk_in_scope

RULE = "fault-space"

_FAULT_TYPE_VALUES = {fault_type.value for fault_type in FaultType}
_FAULT_TYPE_NAMES = {fault_type.name for fault_type in FaultType}

# Sustained-fault literals the rule validates by construction: the spec
# type plus its positional parameter names.
_FAMILY_SPECS = {
    "IoFault": (IoFault, ("op", "mode", "value", "window")),
    "ResourceFault": (ResourceFault, ("resource", "severity", "window")),
    "FaultWindow": (FaultWindow, ("unit", "start", "end")),
}


def _validate_fault(path: str, line: int, function: str,
                    param_index: Optional[int], fault_type: Optional[str],
                    invocation: Optional[int],
                    symbol: str = "") -> Iterator[Finding]:
    """Shared semantic checks for one (function, index, type, invocation)."""
    sig = REGISTRY.get(function)
    if sig is None:
        yield Finding(
            RULE, path, line,
            f"unknown export {function!r}{suggest(function, REGISTRY)}",
            symbol=symbol)
        return
    if param_index is not None:
        if not sig.injectable:
            yield Finding(
                RULE, path, line,
                f"{function} has no parameters and is not injectable "
                "(one of the 130 excluded exports)", symbol=symbol)
        elif param_index >= sig.param_count:
            yield Finding(
                RULE, path, line,
                f"{function} declares {sig.param_count} parameter(s); "
                f"index {param_index} is out of range", symbol=symbol)
        elif param_index < 0:
            yield Finding(RULE, path, line,
                          f"negative parameter index {param_index}",
                          symbol=symbol)
    if fault_type is not None and fault_type not in _FAULT_TYPE_VALUES:
        yield Finding(
            RULE, path, line,
            f"illegal fault type {fault_type!r} (legal: "
            f"{', '.join(sorted(_FAULT_TYPE_VALUES))})", symbol=symbol)
    if invocation is not None and invocation < 1:
        yield Finding(RULE, path, line,
                      f"invocation index must be >= 1, got {invocation}",
                      symbol=symbol)


class FaultSpaceRule(Rule):
    name = RULE
    description = ("fault-list files and inline FaultSpecs must describe "
                   "faults the registry can inject")

    # ------------------------------------------------------------------
    # Fault-list files
    # ------------------------------------------------------------------
    def check_fault_file(self, fault_file: FaultListFile) -> Iterable[Finding]:
        findings: list[Finding] = []
        for line_number, raw_line in enumerate(
                fault_file.text.splitlines(), start=1):
            line = raw_line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 4:
                findings.append(Finding(
                    RULE, fault_file.path, line_number,
                    f"malformed fault line (expected 4 fields, got "
                    f"{len(parts)}): {line!r}"))
                continue
            function, index_text, fault_type, invocation_text = parts
            try:
                param_index = int(index_text)
                invocation = int(invocation_text)
            except ValueError:
                findings.append(Finding(
                    RULE, fault_file.path, line_number,
                    f"non-integer index field in fault line: {line!r}"))
                continue
            findings.extend(_validate_fault(
                fault_file.path, line_number, function, param_index,
                fault_type, invocation))
        return findings

    # ------------------------------------------------------------------
    # Inline FaultSpec literals
    # ------------------------------------------------------------------
    def check_module(self, module: ParsedModule) -> Iterable[Finding]:
        findings: list[Finding] = []
        scopes = [("", module.tree)]
        scopes.extend(iter_functions(module.tree))
        seen: set[int] = set()
        for symbol, scope in scopes:
            for node in walk_in_scope(scope):
                if not isinstance(node, ast.Call) or id(node) in seen:
                    continue
                seen.add(id(node))
                findings.extend(self._check_call(module, symbol, node))
        return findings

    def _check_call(self, module: ParsedModule, symbol: str,
                    call: ast.Call) -> Iterator[Finding]:
        func = call.func
        if isinstance(func, ast.Name) and func.id == "FaultSpec":
            yield from self._check_constructor(module, symbol, call)
        elif isinstance(func, ast.Name) and func.id in _FAMILY_SPECS:
            yield from self._check_family_literal(module, symbol, call,
                                                  func.id)
        elif isinstance(func, ast.Attribute) and func.attr == "from_line" \
                and isinstance(func.value, ast.Name) \
                and func.value.id == "FaultSpec":
            yield from self._check_from_line(module, symbol, call)

    def _check_constructor(self, module: ParsedModule, symbol: str,
                           call: ast.Call) -> Iterator[Finding]:
        args: dict[str, ast.AST] = {}
        names = ("function", "param_index", "fault_type", "invocation")
        for position, arg in enumerate(call.args):
            if position < len(names):
                args[names[position]] = arg
        for keyword in call.keywords:
            if keyword.arg:
                args[keyword.arg] = keyword.value

        function = self._const(args.get("function"), str)
        if function is None:
            return  # dynamic name: runtime validation owns it
        param_index = self._const(args.get("param_index"), int)
        invocation = self._const(args.get("invocation"), int)
        fault_type = self._fault_type_literal(args.get("fault_type"))
        if isinstance(fault_type, Finding):
            yield Finding(fault_type.rule, module.path, call.lineno,
                          fault_type.message, symbol=symbol)
            fault_type = None
        yield from _validate_fault(module.path, call.lineno, function,
                                   param_index, fault_type, invocation,
                                   symbol=symbol)

    def _check_from_line(self, module: ParsedModule, symbol: str,
                         call: ast.Call) -> Iterator[Finding]:
        if not call.args:
            return
        text = self._const(call.args[0], str)
        if text is None:
            return
        parts = text.split()
        if len(parts) != 4:
            yield Finding(
                RULE, module.path, call.lineno,
                f"malformed fault line (expected 4 fields, got "
                f"{len(parts)}): {text!r}", symbol=symbol)
            return
        try:
            param_index, invocation = int(parts[1]), int(parts[3])
        except ValueError:
            yield Finding(
                RULE, module.path, call.lineno,
                f"non-integer index field in fault line: {text!r}",
                symbol=symbol)
            return
        yield from _validate_fault(module.path, call.lineno, parts[0],
                                   param_index, parts[2], invocation,
                                   symbol=symbol)

    # ------------------------------------------------------------------
    # Sustained fault families (IoFault / ResourceFault / FaultWindow)
    # ------------------------------------------------------------------
    def _check_family_literal(self, module: ParsedModule, symbol: str,
                              call: ast.Call,
                              name: str) -> Iterator[Finding]:
        """Validate an inline sustained-fault literal by constructing
        the real spec: the spec constructors already encode every rule
        (legal op/errno combinations, window bounds, severity ranges),
        so lint defers to them instead of duplicating the table."""
        spec_type, param_names = _FAMILY_SPECS[name]
        values, dynamic = self._literal_arguments(call, param_names)
        if dynamic:
            return  # dynamic arguments: runtime validation owns them
        try:
            spec_type(**values)
        except TypeError:
            return  # wrong arity/keywords: Python itself reports this
        except ValueError as exc:
            yield Finding(RULE, module.path, call.lineno,
                          f"invalid {name}: {exc}", symbol=symbol)

    def _literal_arguments(self, call: ast.Call,
                           param_names: tuple[str, ...]):
        """(keyword → constant value, any_dynamic) for a spec call.

        A nested ``FaultWindow(...)`` literal is evaluated recursively;
        any argument that is not a compile-time constant marks the call
        dynamic.
        """
        nodes: dict[str, ast.AST] = {}
        for position, arg in enumerate(call.args):
            if position < len(param_names):
                nodes[param_names[position]] = arg
        for keyword in call.keywords:
            if keyword.arg:
                nodes[keyword.arg] = keyword.value
        values: dict[str, object] = {}
        for key, node in nodes.items():
            if isinstance(node, ast.Constant) \
                    and isinstance(node.value, (str, int, float)):
                values[key] = node.value
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Name) \
                    and node.func.id == "FaultWindow":
                inner, dynamic = self._literal_arguments(
                    node, _FAMILY_SPECS["FaultWindow"][1])
                if dynamic:
                    return {}, True
                try:
                    values[key] = FaultWindow(**inner)
                except (TypeError, ValueError):
                    # The nested window is invalid; the module walk
                    # visits that FaultWindow call on its own, so the
                    # error is reported there, once.
                    return {}, True
            else:
                return {}, True
        return values, False

    # ------------------------------------------------------------------
    @staticmethod
    def _const(node: Optional[ast.AST], kind: type):
        if isinstance(node, ast.Constant) and type(node.value) is kind:
            return node.value
        if kind is int and isinstance(node, ast.UnaryOp) \
                and isinstance(node.op, ast.USub) \
                and isinstance(node.operand, ast.Constant) \
                and type(node.operand.value) is int:
            return -node.operand.value
        return None

    @staticmethod
    def _fault_type_literal(node: Optional[ast.AST]):
        """``FaultType.ZERO``-style attribute -> its line-format value.

        Returns the string value, None for dynamic/absent expressions,
        or a Finding for an attribute that is not a legal fault type.
        """
        if isinstance(node, ast.Attribute) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == "FaultType":
            if node.attr in _FAULT_TYPE_NAMES:
                return FaultType[node.attr].value
            return Finding(
                RULE, "", 0,
                f"FaultType has no member {node.attr!r} (legal: "
                f"{', '.join(sorted(_FAULT_TYPE_NAMES))})")
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id == "FaultType" \
                    and node.args and isinstance(node.args[0], ast.Constant):
                return str(node.args[0].value)
        return None

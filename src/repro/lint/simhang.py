"""Sim-hang lint: loops in process bodies that never yield.

Simulated programs are generator coroutines driven by the discrete-
event engine (:mod:`repro.sim.process`): the engine only regains
control when the generator yields.  A ``while`` loop that contains no
``yield`` therefore freezes the entire simulation — not just the one
process — reproducing the paper's "hang" outcome at the tooling level,
where no campaign timeout can save the run.

The key property that makes this statically decidable: in a
cooperative coroutine, *nothing outside the loop body can run while
the loop spins*.  A yield-less loop's condition can only change if the
body itself changes it.  So a ``while`` inside a generator function is
flagged unless its body (nested scopes excluded):

- yields (control returns to the engine each iteration) — where a
  ``yield from`` only counts if its delegate can actually suspend:
  ``yield from ()`` runs to completion synchronously, and so does
  delegation to a helper generator that itself never reaches a bare
  ``yield`` (:meth:`repro.lint.engine.ModuleIndex.yield_from_suspends`
  follows same-module delegation chains; out-of-module targets like
  the servers' ``yield from k32.Sleep(...)`` idiom are assumed to
  suspend), or
- can leave the loop structurally (``break`` / ``return`` / ``raise``),
  or
- assigns a name or attribute that appears in the loop condition
  (an ordinary terminating computation), or
- has a condition involving a call (whose effects we cannot see).

``for`` loops are not flagged: their iterator is finite or is itself a
generator being driven.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from typing import Optional

from .core import Finding, ParsedModule, Rule, is_generator, iter_functions, walk_in_scope
from .engine import ModuleIndex

RULE = "sim-hang"


_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


def _subnodes(node: ast.AST) -> Iterator[ast.AST]:
    """All nodes of a While body, excluding nested scopes."""
    for stmt in node.body + node.orelse:
        yield stmt
        if not isinstance(stmt, _SCOPES):
            yield from walk_in_scope(stmt)


def _loop_can_progress(loop: ast.While, index: ModuleIndex,
                       class_name: Optional[str]) -> bool:
    body = list(_subnodes(loop))
    for node in body:
        if isinstance(node, ast.Yield):
            return True
        if isinstance(node, ast.YieldFrom):
            # Delegation is only progress if the delegate can suspend:
            # `yield from ()` (and helper chains that never reach a
            # bare yield) run synchronously and the loop still spins.
            if index.yield_from_suspends(node, class_name):
                return True
        if isinstance(node, (ast.Break, ast.Return, ast.Raise)):
            return True
        # `continue` alone does not help: the loop still spins.

    test_names = {n.id for n in ast.walk(loop.test)
                  if isinstance(n, ast.Name)}
    test_attrs = {n.attr for n in ast.walk(loop.test)
                  if isinstance(n, ast.Attribute)}
    if any(isinstance(n, ast.Call) for n in ast.walk(loop.test)):
        return True  # a call in the condition: effects unknowable

    for node in body:
        targets: list[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.For):
            targets = [node.target]
        elif isinstance(node, ast.NamedExpr):
            targets = [node.target]
        for target in targets:
            for sub in ast.walk(target):
                if isinstance(sub, ast.Name) and sub.id in test_names:
                    return True
                if isinstance(sub, ast.Attribute) and sub.attr in test_attrs:
                    return True
    return False


class SimHangRule(Rule):
    name = RULE
    description = ("loops in generator process bodies must yield to the "
                   "discrete-event engine or provably terminate")

    def check_module(self, module: ParsedModule) -> Iterable[Finding]:
        findings: list[Finding] = []
        index = ModuleIndex(module.path, module.tree)
        for qualname, fn in iter_functions(module.tree):
            if isinstance(fn, ast.AsyncFunctionDef) or not is_generator(fn):
                continue
            info = index.functions.get(qualname)
            class_name = info.class_name if info is not None else None
            for node in walk_in_scope(fn):
                if isinstance(node, ast.While) and \
                        not _loop_can_progress(node, index, class_name):
                    findings.append(Finding(
                        RULE, module.path, node.lineno,
                        "while-loop in a generator process body neither "
                        "yields nor can terminate: the discrete-event "
                        "engine would wedge (the paper's hang outcome)",
                        symbol=qualname))
        return findings

"""Value-flow tier: per-parameter usage facts, fault-equivalence classes.

The campaign enumerates the full (function × parameter × fault) grid,
but many corruptions are provably indistinguishable before a single run
executes: a parameter the implementation never reads cannot produce
distinct outcomes for distinct corrupted values, and a pointer that is
only ever dereferenced faults the same way for every non-null
corruption.  This module turns that observation into three artifacts:

- **usage facts** — for every intercepted kernel32 export (and, through
  the interprocedural rules, every reachable server handler) an
  abstract interpretation of the registered implementation computes how
  each parameter is *used*: never read, accepted as-is, null/zero
  checked only, branched on equality against constants, bounds
  compared, length-consumed, passed through, or fully value-consumed;
- **equivalence classes** — usage facts that make corrupted values
  indistinguishable collapse them into one class per (function,
  parameter) slice of the fault grid, emitted as a deterministic,
  fingerprinted pruning manifest the planner can consume
  (``repro lint --emit-equivalence`` / ``repro run
  --prune-equivalent``);
- **rules** — :class:`DeadParamRule` (a corruption target no code can
  observe) and :class:`UseBeforeValidateRule` (a value dereferenced on
  a path before its only validation), both in the ``valueflow`` rule
  family.

**Soundness over pruning power.**  A class is only emitted when the
*simulator's own decode semantics* make the members indistinguishable —
e.g. a required-pointer decode raises an access violation for NULL and
wild values alike, so all three corruptions of a dereferenced-only
pointer share one outcome; an optional pointer accepts NULL, so only
the two wild corruptions collapse.  Value-*consuming* usages (lengths,
sizes, timeouts, pass-throughs) never derive classes: those are exactly
the corruptions the paper observes to be "sometimes detected, sometimes
not", and their outcomes legitimately depend on the corrupted value.
Anything the evaluator cannot resolve (a dynamic parameter index, the
frame escaping to an unresolvable call) poisons the whole export into
singletons.  The :func:`equiv_check` oracle closes the loop dynamically
by executing every member of sampled classes and failing on divergence.
"""

from __future__ import annotations

import ast
import hashlib
import json
from typing import Iterable, Optional, Sequence

from .core import Finding, ParsedModule, Rule

# ----------------------------------------------------------------------
# Abstract values
#
# The lattice is deliberately small.  Decode results (dereferenced
# objects, resolved handles) are *not* tracked: a corrupted pointer
# never yields content (the decode itself faults or returns None), so
# only raw word values can carry a corruption into later uses.
# ----------------------------------------------------------------------
FRAME = ("frame",)
ARGTABLE = ("argtable",)
OPAQUE = ("opaque",)


def _raw(index: int) -> tuple:
    return ("raw", index)


def _argobj(index: int) -> tuple:
    return ("argobj", index)


def _const(value) -> tuple:
    return ("const", value)


# Frame accessor -> the decode fact it records for its parameter index.
ACCESSOR_FACTS = {
    "uint": "raw",
    "handle_value": "raw",
    "boolean": "bool",
    "timeout_seconds": "timeout",
    "pointer": "deref",
    "string": "deref",
    "buffer": "deref",
    "out_cell": "deref",
    "opt_pointer": "opt-deref",
    "opt_string": "opt-deref",
    "opt_buffer": "opt-deref",
    "opt_out_cell": "opt-deref",
    "out_sink": "opt-deref",
    "handle_object": "resolve",
    "process_handle": "pseudo",
}

DECODE_FACTS = frozenset(ACCESSOR_FACTS.values())

# Accessors whose result can be None and therefore should be
# None-checked before use (feeds UseBeforeValidateRule).
NULLABLE_ACCESSORS = frozenset({
    "opt_pointer", "opt_string", "opt_buffer", "opt_out_cell",
    "out_sink", "handle_object", "process_handle",
})

_INLINE_DEPTH = 5
_MAX_LITERAL_LOOP = 8

# Fault-type value strings, in canonical order (DEFAULT_FAULT_TYPES).
ZERO, ONES, FLIP = "zero", "ones", "flip"
ALL_FAULTS = (ZERO, ONES, FLIP)


class ExportFacts:
    """Everything the evaluator learned about one implementation."""

    __slots__ = ("export", "facts", "consts", "imprecise")

    def __init__(self, export: str):
        self.export = export
        self.facts: dict[int, set] = {}
        self.consts: dict[int, set] = {}
        self.imprecise = False

    def add(self, index: int, fact: str) -> None:
        self.facts.setdefault(index, set()).add(fact)

    def add_const(self, index: int, value: int) -> None:
        self.consts.setdefault(index, set()).add(value)


class ImplSite:
    """Where an ``@k32impl`` registration lives in the linted tree."""

    __slots__ = ("export", "path", "qualname", "node", "helpers")

    def __init__(self, export: str, path: str, qualname: str,
                 node: ast.FunctionDef, helpers: dict):
        self.export = export
        self.path = path
        self.qualname = qualname
        self.node = node
        self.helpers = helpers  # same-module name -> FunctionDef


def _k32impl_export(decorator: ast.expr) -> Optional[str]:
    """``@k32impl("Name")`` -> "Name"; None for other decorators."""
    if not isinstance(decorator, ast.Call) or len(decorator.args) != 1:
        return None
    func = decorator.func
    name = func.id if isinstance(func, ast.Name) else (
        func.attr if isinstance(func, ast.Attribute) else None)
    if name != "k32impl":
        return None
    arg = decorator.args[0]
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value
    return None


def find_impl_sites(modules: Sequence[ParsedModule]) -> dict:
    """export name -> :class:`ImplSite`, over the linted modules."""
    sites: dict[str, ImplSite] = {}
    for module in modules:
        helpers = {node.name: node for node in module.tree.body
                   if isinstance(node, ast.FunctionDef)}
        for node in helpers.values():
            for decorator in node.decorator_list:
                export = _k32impl_export(decorator)
                if export is not None:
                    sites[export] = ImplSite(export, module.path,
                                             node.name, node, helpers)
    return sites


# ----------------------------------------------------------------------
# The evaluator
# ----------------------------------------------------------------------
class _Evaluator:
    """Abstract interpretation of one implementation function.

    Control flow is over-approximated exactly like the segment CFGs in
    :mod:`repro.lint.engine`: both branches of an ``if`` are walked
    with a shared environment, loop bodies are walked once (literal
    tuple loops are unrolled per binding), exception edges are ignored.
    Facts are *sets*, so re-walking a region is harmless.
    """

    def __init__(self, site: ImplSite, facts: ExportFacts):
        self.site = site
        self.facts = facts
        self.stack: list[str] = []

    # -- fact helpers ---------------------------------------------------
    def _use(self, value, fact: str) -> None:
        if isinstance(value, tuple) and value[0] == "raw":
            self.facts.add(value[1], fact)

    def _consume(self, value) -> None:
        """Record that a raw word flowed somewhere value-sensitive."""
        if isinstance(value, tuple) and value[0] in ("raw", "argobj"):
            self.facts.add(value[1], "consumed")
        elif value is FRAME:
            # The frame escaped to code we cannot see: any parameter
            # may be decoded there.  Poison the whole export.
            self.facts.imprecise = True

    _SKIP = object()  # a const-None index: the `index is not None` guard

    def _index_of(self, node: ast.expr, env: dict):
        """Constant parameter index, ``_SKIP`` for None, else None."""
        known = False
        value = None
        if isinstance(node, ast.Constant):
            known, value = True, node.value
        elif isinstance(node, ast.Name):
            bound = env.get(node.id)
            if isinstance(bound, tuple) and bound[0] == "const":
                known, value = True, bound[1]
        if known and value is None:
            # ``frame.opt_out_cell(cell_index)`` where the caller passed
            # None and guards on it — a skipped decode, not imprecision.
            return self._SKIP
        if known and isinstance(value, int) and not isinstance(value, bool):
            return value
        return None

    # -- statements -----------------------------------------------------
    def walk(self, body: Sequence[ast.stmt], env: dict) -> None:
        for stmt in body:
            self.stmt(stmt, env)

    def stmt(self, node: ast.stmt, env: dict) -> None:
        if isinstance(node, ast.Expr):
            self.eval(node.value, env)
        elif isinstance(node, ast.Assign):
            value = self.eval(node.value, env)
            if isinstance(node.value, (ast.Tuple, ast.List)):
                # Remember literal tuples by name so a later
                # ``for i in values:`` can unroll over them.
                value = ("literal", node.value)
            for target in node.targets:
                self.bind(target, value, env)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self.bind(node.target, self.eval(node.value, env), env)
        elif isinstance(node, ast.AugAssign):
            self._consume(self.eval(node.value, env))
            if isinstance(node.target, ast.Name):
                self._consume(env.get(node.target.id))
                env[node.target.id] = OPAQUE
        elif isinstance(node, ast.Return):
            if node.value is not None:
                value = self.eval(node.value, env)
                self._use(value, "passthrough")
                env.setdefault("__returns__", []).append(value)
        elif isinstance(node, ast.If):
            self.eval_test(node.test, env)
            self.walk(node.body, env)
            self.walk(node.orelse, env)
        elif isinstance(node, ast.While):
            self.eval_test(node.test, env)
            self.walk(node.body, env)
            self.walk(node.orelse, env)
        elif isinstance(node, ast.For):
            self.for_stmt(node, env)
        elif isinstance(node, ast.Try):
            self.walk(node.body, env)
            for handler in node.handlers:
                self.walk(handler.body, env)
            self.walk(node.orelse, env)
            self.walk(node.finalbody, env)
        elif isinstance(node, ast.With):
            for item in node.items:
                value = self.eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self.bind(item.optional_vars, value, env)
            self.walk(node.body, env)
        elif isinstance(node, ast.Raise):
            if node.exc is not None:
                self.eval(node.exc, env)
        elif isinstance(node, ast.Assert):
            self.eval_test(node.test, env)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                self.eval(target, env)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef, ast.Import, ast.ImportFrom,
                               ast.Pass, ast.Break, ast.Continue,
                               ast.Global, ast.Nonlocal)):
            pass
        else:  # pragma: no cover - exotic statements
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._consume(self.eval(child, env))

    def bind(self, target: ast.expr, value, env: dict) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self.bind(element, OPAQUE, env)
        else:
            # Stores into attributes/subscripts make the value escape.
            self.eval(target, env)
            self._consume(value)

    def for_stmt(self, node: ast.For, env: dict) -> None:
        bindings = self._loop_bindings(node.target, node.iter, env)
        if bindings is not None:
            for binding in bindings:
                env.update(binding)
                self.walk(node.body, env)
        else:
            self._consume(self.eval(node.iter, env))
            self.bind(node.target, OPAQUE, env)
            self.walk(node.body, env)
        self.walk(node.orelse, env)

    def _loop_bindings(self, target: ast.expr, iterable: ast.expr,
                       env: dict) -> Optional[list]:
        """Per-iteration environments for small literal loops.

        Handles ``for i in (3, 4, 5):`` and ``for i, v in
        enumerate(values, start=1):`` over a literal tuple — the idioms
        implementations use to decode runs of adjacent parameters.
        """
        start = None
        if isinstance(iterable, ast.Call) and \
                isinstance(iterable.func, ast.Name) and \
                iterable.func.id == "enumerate" and iterable.args:
            start = 0
            for keyword in iterable.keywords:
                if keyword.arg == "start" and \
                        isinstance(keyword.value, ast.Constant):
                    start = keyword.value.value
            iterable = iterable.args[0]
        literal = iterable
        if isinstance(literal, ast.Name):
            bound = env.get(literal.id)
            if isinstance(bound, tuple) and bound[0] == "literal":
                literal = bound[1]
        if not (isinstance(literal, (ast.Tuple, ast.List)) and
                len(literal.elts) <= _MAX_LITERAL_LOOP):
            return None
        values = [_const(e.value) if isinstance(e, ast.Constant)
                  else OPAQUE for e in literal.elts]
        if start is None:
            if isinstance(target, ast.Name):
                return [{target.id: value} for value in values]
            return None
        if isinstance(target, ast.Tuple) and len(target.elts) == 2 and \
                all(isinstance(e, ast.Name) for e in target.elts):
            index_name, value_name = (e.id for e in target.elts)
            return [{index_name: _const(start + position),
                     value_name: value}
                    for position, value in enumerate(values)]
        return None

    # -- branch tests ---------------------------------------------------
    def eval_test(self, node: ast.expr, env: dict) -> None:
        """A condition: bare truthiness of a raw word is a zero-check."""
        if isinstance(node, ast.BoolOp):
            for operand in node.values:
                self.eval_test(operand, env)
            return
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            self.eval_test(node.operand, env)
            return
        value = self.eval(node, env)
        self._use(value, "null-check")

    # -- expressions ----------------------------------------------------
    def eval(self, node: ast.expr, env: dict):
        if isinstance(node, ast.Constant):
            return _const(node.value)
        if isinstance(node, ast.Name):
            return env.get(node.id, OPAQUE)
        if isinstance(node, ast.Attribute):
            return self.attribute(node, env)
        if isinstance(node, ast.Subscript):
            return self.subscript(node, env)
        if isinstance(node, ast.Call):
            return self.call(node, env)
        if isinstance(node, ast.Compare):
            return self.compare(node, env)
        if isinstance(node, ast.BoolOp):
            return self.boolop(node, env)
        if isinstance(node, ast.BinOp):
            self._consume(self.eval(node.left, env))
            self._consume(self.eval(node.right, env))
            return OPAQUE
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.Not):
                self._use(self.eval(node.operand, env), "null-check")
            else:
                self._consume(self.eval(node.operand, env))
            return OPAQUE
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if node.value is not None:
                self._consume(self.eval(node.value, env))
            return OPAQUE
        if isinstance(node, ast.IfExp):
            self.eval_test(node.test, env)
            self.eval(node.body, env)
            self.eval(node.orelse, env)
            return OPAQUE
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for element in node.elts:
                self._consume(self.eval(element, env))
            return OPAQUE
        # Everything else (f-strings, dicts, comprehensions, lambdas,
        # starred args): walk child expressions, consume raw words.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._consume(self.eval(child, env))
        return OPAQUE

    def attribute(self, node: ast.Attribute, env: dict):
        value = self.eval(node.value, env)
        if value is FRAME and node.attr == "args":
            return ARGTABLE
        if isinstance(value, tuple) and value[0] == "argobj":
            if node.attr == "raw":
                self.facts.add(value[1], "raw")
                return _raw(value[1])
            # ``.kind`` (and anything else on a DecodedArg) observes
            # the corruption class directly — value-sensitive.
            self.facts.add(value[1], "raw")
            self.facts.add(value[1], "consumed")
            return OPAQUE
        if isinstance(value, tuple) and value[0] == "raw":
            self.facts.add(value[1], "consumed")
        return OPAQUE

    def subscript(self, node: ast.Subscript, env: dict):
        value = self.eval(node.value, env)
        self.slice_uses(node.slice, env)
        if value is ARGTABLE:
            index = self._index_of(node.slice, env)
            if index is not None:
                return _argobj(index)
            self.facts.imprecise = True
            return OPAQUE
        self._consume(value)
        return OPAQUE

    def slice_uses(self, node: ast.expr, env: dict) -> None:
        """A raw word used as a slice bound is length-consumed."""
        if isinstance(node, ast.Slice):
            for bound in (node.lower, node.upper, node.step):
                if bound is not None:
                    self._use(self.eval(bound, env), "length")
        elif isinstance(node, ast.Tuple):
            for element in node.elts:
                self.slice_uses(element, env)
        else:
            self._consume(self.eval(node, env))

    def boolop(self, node: ast.BoolOp, env: dict):
        # ``frame.uint(2) or 1``: truthiness of every operand is
        # tested, and a raw operand's *value* flows out of the
        # expression.
        flowing = OPAQUE
        for operand in node.values:
            value = self.eval(operand, env)
            self._use(value, "null-check")
            if isinstance(value, tuple) and value[0] == "raw":
                flowing = value
        return flowing

    def compare(self, node: ast.Compare, env: dict):
        operands = [self.eval(node.left, env)]
        operands.extend(self.eval(comp, env) for comp in node.comparators)
        comparators = [node.left, *node.comparators]
        for position, value in enumerate(operands):
            if not (isinstance(value, tuple) and value[0] == "raw"):
                continue
            ops = set()
            if position > 0:
                ops.add(type(node.ops[position - 1]))
            if position < len(node.ops):
                ops.add(type(node.ops[position]))
            others = [comparators[i] for i in range(len(comparators))
                      if i != position]
            self.raw_compare(value[1], ops, others)
        return OPAQUE

    def raw_compare(self, index: int, ops: set, others: list) -> None:
        if ops & {ast.Lt, ast.LtE, ast.Gt, ast.GtE}:
            self.facts.add(index, "bounds")
            return
        constants: list = []
        symbolic = False
        for other in others:
            for leaf in self._equality_leaves(other):
                if isinstance(leaf, ast.Constant):
                    constants.append(leaf.value)
                else:
                    symbolic = True
        if symbolic:
            # Compared against a name we cannot evaluate (module
            # constants, other locals): equality behaviour depends on
            # values we do not know.
            self.facts.add(index, "eq-sym")
            return
        if all(value in (0, None, False) for value in constants):
            self.facts.add(index, "null-check")
            return
        if all(isinstance(value, int) and not isinstance(value, bool)
               for value in constants):
            self.facts.add(index, "eq-const")
            for value in constants:
                self.facts.add_const(index, value)
            return
        self.facts.add(index, "eq-sym")

    @staticmethod
    def _equality_leaves(node: ast.expr) -> Iterable[ast.expr]:
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for element in node.elts:
                yield element
        else:
            yield node

    # -- calls ----------------------------------------------------------
    def call(self, node: ast.Call, env: dict):
        func = node.func
        if isinstance(func, ast.Attribute):
            receiver = self.eval(func.value, env)
            if receiver is FRAME:
                return self.frame_call(func.attr, node, env)
            self.eval_args(node, env)
            return OPAQUE
        if isinstance(func, ast.Name):
            helper = self.site.helpers.get(func.id)
            if helper is not None and len(self.stack) < _INLINE_DEPTH \
                    and func.id not in self.stack:
                return self.inline(helper, node, env)
            self.eval_args(node, env)
            return OPAQUE
        self.eval(func, env)
        self.eval_args(node, env)
        return OPAQUE

    def eval_args(self, node: ast.Call, env: dict) -> None:
        for arg in node.args:
            self._consume(self.eval(arg, env))
        for keyword in node.keywords:
            self._consume(self.eval(keyword.value, env))

    def frame_call(self, method: str, node: ast.Call, env: dict):
        fact = ACCESSOR_FACTS.get(method)
        if fact is not None:
            if not node.args:
                self.facts.imprecise = True
                return OPAQUE
            index = self._index_of(node.args[0], env)
            if index is self._SKIP:
                return OPAQUE
            if index is None:
                self.facts.imprecise = True
                return OPAQUE
            self.facts.add(index, fact)
            for extra in node.args[1:]:
                self.eval(extra, env)
            if method in ("uint", "handle_value"):
                return _raw(index)
            return OPAQUE
        if method == "arg":
            index = self._index_of(node.args[0], env) if node.args else None
            if index is self._SKIP:
                return OPAQUE
            if index is None:
                self.facts.imprecise = True
                return OPAQUE
            return _argobj(index)
        if method in ("fail", "succeed", "new_handle"):
            for arg in node.args:
                self._use(self.eval(arg, env), "passthrough")
            for keyword in node.keywords:
                self._use(self.eval(keyword.value, env), "passthrough")
            return OPAQUE
        # Unknown frame method: treat like any opaque call.
        self.eval_args(node, env)
        return OPAQUE

    def inline(self, helper: ast.FunctionDef, node: ast.Call, env: dict):
        """Same-module helper call: walk the body with seeded formals."""
        arguments = helper.args
        formals = [a.arg for a in arguments.posonlyargs + arguments.args]
        values: dict[str, object] = {}
        for position, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred):
                self.facts.imprecise = True
                self._consume(self.eval(arg.value, env))
                continue
            value = self.eval(arg, env)
            if position < len(formals):
                values[formals[position]] = value
            else:
                self._consume(value)
        for keyword in node.keywords:
            value = self.eval(keyword.value, env)
            if keyword.arg is not None and keyword.arg in formals:
                values[keyword.arg] = value
            else:
                self._consume(value)
        defaults = arguments.defaults
        for offset, default in enumerate(defaults):
            name = formals[len(formals) - len(defaults) + offset]
            if name not in values:
                values[name] = (_const(default.value)
                                if isinstance(default, ast.Constant)
                                else OPAQUE)
        callee_env = {name: values.get(name, OPAQUE) for name in formals}
        self.stack.append(helper.name)
        try:
            self.walk(helper.body, callee_env)
        finally:
            self.stack.pop()
        returns = callee_env.get("__returns__", [])
        raws = [value for value in returns
                if isinstance(value, tuple) and value[0] == "raw"]
        if raws and len(set(raws)) == 1 and len(returns) == len(raws):
            return raws[0]
        return OPAQUE


def evaluate_impl(site: ImplSite) -> ExportFacts:
    """Run the abstract interpreter over one registered implementation."""
    facts = ExportFacts(site.export)
    arguments = site.node.args
    formals = [a.arg for a in arguments.posonlyargs + arguments.args]
    env: dict[str, object] = {name: OPAQUE for name in formals}
    if formals:
        env[formals[0]] = FRAME
    evaluator = _Evaluator(site, facts)
    evaluator.walk(site.node.body, env)
    return facts


# ----------------------------------------------------------------------
# Classification: facts -> usage label + equivalence groups
#
# Groups collapse faults whose *decode-level* behaviour is identical:
#   required deref  : zero -> NULL AV, ones/flip -> wild AV  => all AV
#   optional deref  : zero -> legal None, ones/flip -> wild AV
#   handle resolve  : all three corruptions miss the handle table
#   pseudo handle   : ones == INVALID_HANDLE_VALUE == calling process
# Value-consuming usages never group (the corrupted word reaches
# behaviour).  ``flip`` grouping assumes the uncorrupted original fits
# in 31 bits (true for every simulated word), so a flipped value is
# never zero and never collides with small branch constants.
# ----------------------------------------------------------------------
def classify(facts: set, consts: set) -> tuple:
    """(decode+use fact set, eq constants) -> (usage, groups)."""
    decode = facts & DECODE_FACTS
    uses = facts - DECODE_FACTS
    if not facts:
        return "unused", [list(ALL_FAULTS)]
    if decode <= {"deref"} and not uses:
        return "dereferenced", [list(ALL_FAULTS)]
    if decode <= {"deref", "opt-deref"} and not uses:
        if "opt-deref" in decode:
            return "optional-deref", [[ONES, FLIP]]
        return "dereferenced", [list(ALL_FAULTS)]
    if decode <= {"resolve"} and not uses:
        return "handle-checked", [list(ALL_FAULTS)]
    if decode <= {"pseudo"} and not uses:
        return "pseudo-handle", [[ZERO, FLIP]]
    if decode <= {"timeout"} and not uses:
        return "timeout", []
    if decode <= {"raw", "bool"}:
        if "bool" in decode and uses <= {"null-check"}:
            return "boolean", [[ONES, FLIP]]
        if not uses:
            return "accepted-as-is", [list(ALL_FAULTS)]
        if uses <= {"null-check"}:
            return "null-checked-only", [[ONES, FLIP]]
        if uses <= {"null-check", "eq-const"}:
            group = [ONES, FLIP]
            if 0 not in consts and "null-check" not in uses:
                group = list(ALL_FAULTS)
            return "equality-branched", [group]
        if uses <= {"null-check", "eq-const", "eq-sym", "bounds"}:
            return "bounds-compared", []
        if uses <= {"null-check", "length"}:
            return "length-consumed", []
        if uses <= {"null-check", "passthrough"}:
            return "passed-through", []
        return "consumed", []
    return "mixed", []


# Generic (no registered implementation) classification by signature
# parameter type, mirroring ``generic_implementation`` exactly.
_GENERIC_BY_CODE = {
    "I": ("accepted-as-is", [list(ALL_FAULTS)]),
    "Z": ("accepted-as-is", [list(ALL_FAULTS)]),
    "F": ("accepted-as-is", [list(ALL_FAULTS)]),
    "B": ("accepted-as-is", [list(ALL_FAULTS)]),
    "T": ("accepted-as-is", [list(ALL_FAULTS)]),
    "P": ("dereferenced", [list(ALL_FAULTS)]),
    "S": ("dereferenced", [list(ALL_FAULTS)]),
    "O": ("dereferenced", [list(ALL_FAULTS)]),
    "P?": ("optional-deref", [[ONES, FLIP]]),
    "S?": ("optional-deref", [[ONES, FLIP]]),
    "O?": ("optional-deref", [[ONES, FLIP]]),
    "H": ("handle-checked", [list(ALL_FAULTS)]),
    # A corrupted-to-zero or corrupted-to-ones optional handle is
    # *legal* (absent); only flip risks hitting the validity check.
    "H?": ("handle-opt", [[ZERO, ONES]]),
}


class ParamUsage:
    """One parameter's derived usage and equivalence groups."""

    __slots__ = ("function", "index", "name", "usage", "groups",
                 "implemented")

    def __init__(self, function: str, index: int, name: str, usage: str,
                 groups: list, implemented: bool):
        self.function = function
        self.index = index
        self.name = name
        self.usage = usage
        self.groups = groups
        self.implemented = implemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ParamUsage {self.function}[{self.index}] "
                f"{self.usage} groups={self.groups}>")


# ----------------------------------------------------------------------
# The manifest
# ----------------------------------------------------------------------
class EquivalenceManifest:
    """A deterministic, fingerprinted set of fault-equivalence classes.

    ``classes`` is a sorted list of ``{"function", "param", "name",
    "usage", "faults"}`` dicts; each ``faults`` list names the
    fault-type values (in canonical zero/ones/flip order) whose
    outcomes the static analysis claims are identical.  The first
    member of each class is the representative the planner schedules.
    """

    VERSION = 1

    def __init__(self, classes: Sequence[dict]):
        self.classes = [dict(entry) for entry in classes]
        self.classes.sort(key=lambda e: (e["function"], e["param"],
                                         e["faults"]))
        self.fingerprint = hashlib.sha256(
            json.dumps(self.classes, sort_keys=True).encode("utf-8")
        ).hexdigest()[:16]
        self._lookup: dict[tuple, dict[str, int]] = {}
        for position, entry in enumerate(self.classes):
            slot = self._lookup.setdefault(
                (entry["function"], entry["param"]), {})
            for fault_value in entry["faults"]:
                slot[fault_value] = position

    # ------------------------------------------------------------------
    @property
    def collapsible_count(self) -> int:
        """Runs a pruned campaign saves over the full grid, per
        invocation: every class executes one representative."""
        return sum(len(entry["faults"]) - 1 for entry in self.classes)

    def group_key(self, fault) -> Optional[tuple]:
        """(function, param, class index) for a prunable fault spec.

        Return-value faults (no ``param_index``) and fault types
        outside every class map to None — they are always scheduled.
        """
        param = getattr(fault, "param_index", None)
        fault_type = getattr(fault, "fault_type", None)
        if param is None or fault_type is None:
            return None
        slot = self._lookup.get((fault.function, param))
        if not slot:
            return None
        position = slot.get(fault_type.value)
        if position is None:
            return None
        return (fault.function, param, position)

    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        return {"version": self.VERSION, "fingerprint": self.fingerprint,
                "classes": self.classes}

    @classmethod
    def from_json(cls, payload: dict) -> "EquivalenceManifest":
        if not isinstance(payload, dict) or \
                payload.get("version") != cls.VERSION:
            raise ValueError("unsupported equivalence manifest version")
        classes = payload.get("classes")
        if not isinstance(classes, list):
            raise ValueError("equivalence manifest has no classes list")
        for entry in classes:
            if not isinstance(entry, dict) or \
                    not isinstance(entry.get("function"), str) or \
                    not isinstance(entry.get("param"), int) or \
                    not isinstance(entry.get("faults"), list):
                raise ValueError("malformed equivalence class entry")
        return cls(classes)

    @classmethod
    def load(cls, path: str) -> "EquivalenceManifest":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(json.load(handle))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def render_text(self) -> str:
        lines = [f"equivalence manifest {self.fingerprint}: "
                 f"{len(self.classes)} class(es), "
                 f"{self.collapsible_count} collapsible run(s) "
                 "per invocation"]
        for entry in self.classes:
            lines.append(
                f"  {entry['function']}[{entry['param']}] "
                f"{entry.get('name', '?')}: {entry.get('usage', '?')} "
                f"-> {{{', '.join(entry['faults'])}}}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# The pass
# ----------------------------------------------------------------------
class ValueFlow:
    """The computed tier: per-export usages and the manifest."""

    def __init__(self, usages: dict, sites: dict, imprecise: set,
                 unanalyzed: set):
        self.usages = usages          # export -> list[ParamUsage]
        self.sites = sites            # export -> ImplSite
        self.imprecise = imprecise    # exports poisoned to singletons
        self.unanalyzed = unanalyzed  # registered impls outside scope
        classes = []
        for export in sorted(usages):
            for usage in usages[export]:
                for group in usage.groups:
                    if len(group) >= 2:
                        classes.append({
                            "function": export,
                            "param": usage.index,
                            "name": usage.name,
                            "usage": usage.usage,
                            "faults": list(group),
                        })
        self.manifest = EquivalenceManifest(classes)


def analyze_valueflow(modules: Sequence[ParsedModule]) -> ValueFlow:
    """Compute the value-flow tier for the linted modules.

    Exports whose implementation is registered at runtime but whose
    source is *outside* the linted scope are marked ``unanalyzed`` and
    derive no classes — pruning from a partial tree would be unsound.
    """
    from ..nt.kernel32 import IMPLEMENTATIONS
    from ..nt.kernel32.signatures import iter_signatures

    sites = find_impl_sites(modules)
    usages: dict[str, list] = {}
    imprecise: set = set()
    unanalyzed: set = set()
    for signature in iter_signatures():
        if not signature.params:
            continue
        export = signature.name
        site = sites.get(export)
        if site is not None:
            facts = evaluate_impl(site)
            per_param = []
            for param in signature.params:
                if facts.imprecise:
                    usage, groups = "opaque", []
                    imprecise.add(export)
                else:
                    usage, groups = classify(
                        facts.facts.get(param.index, set()),
                        facts.consts.get(param.index, set()))
                per_param.append(ParamUsage(export, param.index,
                                            param.name, usage, groups,
                                            implemented=True))
            usages[export] = per_param
        elif export in IMPLEMENTATIONS:
            unanalyzed.add(export)
            usages[export] = [
                ParamUsage(export, param.index, param.name,
                           "unanalyzed", [], implemented=True)
                for param in signature.params]
        else:
            usages[export] = [
                ParamUsage(export, param.index, param.name,
                           *_GENERIC_BY_CODE[param.ptype.value],
                           implemented=False)
                for param in signature.params]
    return ValueFlow(usages, sites, imprecise, unanalyzed)


_CACHE: list = [None, None]


def valueflow_for(modules: Sequence[ParsedModule]) -> ValueFlow:
    """Single-slot cache over :func:`analyze_valueflow`, so the rules
    and the CLI entry points share one computation per lint run."""
    key = tuple((module.path, id(module.tree)) for module in modules)
    if _CACHE[0] != key:
        _CACHE[0] = key
        _CACHE[1] = analyze_valueflow(modules)
    return _CACHE[1]


def compute_equivalence(modules: Sequence[ParsedModule]
                        ) -> EquivalenceManifest:
    return valueflow_for(modules).manifest


# ----------------------------------------------------------------------
# The dynamic oracle
# ----------------------------------------------------------------------
class EquivCheckReport:
    """Outcome of executing every member of sampled classes."""

    __slots__ = ("fingerprint", "candidates", "sampled", "executed",
                 "divergences")

    def __init__(self, fingerprint: str, candidates: int, sampled: list,
                 executed: int, divergences: list):
        self.fingerprint = fingerprint
        self.candidates = candidates
        self.sampled = sampled
        self.executed = executed
        self.divergences = divergences

    @property
    def clean(self) -> bool:
        return not self.divergences

    def render_text(self) -> str:
        lines = [f"equivalence oracle ({self.fingerprint}): "
                 f"{len(self.sampled)}/{self.candidates} class(es) "
                 f"sampled, {self.executed} run(s) executed"]
        for entry, signatures in self.divergences:
            lines.append(f"  DIVERGED {entry['function']}"
                         f"[{entry['param']}] ({entry['usage']}):")
            for fault_value in entry["faults"]:
                lines.append(f"    {fault_value}: "
                             f"{signatures[fault_value]}")
        lines.append("equivalence oracle clean" if self.clean else
                     f"equivalence oracle: {len(self.divergences)} "
                     "class(es) diverged")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "clean": self.clean,
            "fingerprint": self.fingerprint,
            "candidates": self.candidates,
            "sampled": [(e["function"], e["param"]) for e in self.sampled],
            "executed": self.executed,
            "divergences": [
                {"function": entry["function"], "param": entry["param"],
                 "usage": entry["usage"],
                 "signatures": {fault: list(map(str, signature))
                                for fault, signature in signatures.items()}}
                for entry, signatures in self.divergences],
        }


def _outcome_signature(run) -> tuple:
    """The fields two equivalent runs must agree on.

    ``response_time`` is excluded (per-run seeds derive from the fault
    key, so timing jitter differs across class members by construction)
    and so is ``activated_as_noop`` (whether a corruption was a no-op
    depends on the original word, not on behaviour).
    """
    failure_mode = getattr(run, "failure_mode", None)
    return (
        run.activated,
        getattr(run.outcome, "value", run.outcome),
        getattr(failure_mode, "value", failure_mode),
        run.restarts_detected,
        run.retries_used,
        run.server_came_up,
    )


def equiv_check(modules: Sequence[ParsedModule], sample: int = 6,
                workload_names: Optional[Sequence[str]] = None,
                config=None) -> EquivCheckReport:
    """Execute every member of sampled classes; fail on divergence.

    Classes are candidates when some registered workload's fault-free
    profile (no middleware, the cheapest configuration) calls the
    target function — members of other classes would never activate and
    would vacuously agree.  Sampling is a deterministic stride over the
    sorted candidate list, so CI always checks the same classes for a
    given tree.
    """
    from ..core.faults import FaultSpec, FaultType
    from ..core.runner import RunConfig, execute_run
    from ..core.workload import WORKLOADS, MiddlewareKind

    manifest = valueflow_for(modules).manifest
    run_config = config if config is not None else RunConfig()
    names = sorted(workload_names if workload_names is not None
                   else WORKLOADS)
    first_caller: dict[str, str] = {}
    for name in names:
        profile = execute_run(WORKLOADS[name], MiddlewareKind.NONE, None,
                              run_config)
        for function in profile.called_functions:
            first_caller.setdefault(function, name)

    candidates = [entry for entry in manifest.classes
                  if entry["function"] in first_caller]
    if sample and 0 < sample < len(candidates):
        stride = len(candidates) / sample
        picked = [candidates[int(position * stride)]
                  for position in range(sample)]
    else:
        picked = list(candidates)

    executed = 0
    divergences = []
    for entry in picked:
        workload = WORKLOADS[first_caller[entry["function"]]]
        signatures = {}
        for fault_value in entry["faults"]:
            fault = FaultSpec(entry["function"], entry["param"],
                              FaultType(fault_value), 1)
            run = execute_run(workload, MiddlewareKind.NONE, fault,
                              run_config)
            executed += 1
            signatures[fault_value] = _outcome_signature(run)
        if len(set(signatures.values())) > 1:
            divergences.append((entry, signatures))
    return EquivCheckReport(manifest.fingerprint, len(candidates),
                            picked, executed, divergences)


# ----------------------------------------------------------------------
# The rules
# ----------------------------------------------------------------------
def _function_scope_nodes(node: ast.FunctionDef) -> Iterable[ast.AST]:
    """Walk a function without descending into nested def/class."""
    queue = list(node.body)
    while queue:
        current = queue.pop()
        yield current
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.ClassDef, ast.Lambda)):
            continue
        queue.extend(ast.iter_child_nodes(current))


def _is_trivial_body(body: Sequence[ast.stmt]) -> bool:
    """pass / docstring / ellipsis / bare raise — interface stubs."""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value,
                                                     ast.Constant):
            continue
        if isinstance(stmt, ast.Raise):
            continue
        return False
    return True


class DeadParamRule(Rule):
    """A declared corruption target no code can observe.

    Two populations: kernel32 implementations whose signature declares
    a parameter the body never touches at all (the idiom for
    deliberate acceptance is a bare discard like ``frame.uint(2)``,
    which *does* count as touched), and role-reachable project
    functions with a parameter that is never read.
    """

    name = "dead-param"
    family = "valueflow"
    description = ("every declared parameter should be read, or "
                   "explicitly discarded")

    def check_project(self,
                      modules: Sequence[ParsedModule]) -> Iterable[Finding]:
        yield from self._impl_findings(modules)
        yield from self._project_findings(modules)

    def _impl_findings(self, modules) -> Iterable[Finding]:
        flow = valueflow_for(modules)
        for export in sorted(flow.sites):
            site = flow.sites[export]
            if export in flow.imprecise:
                continue
            for usage in flow.usages.get(export, ()):
                if usage.usage != "unused":
                    continue
                yield Finding(
                    self.name, site.path, site.node.lineno,
                    f"{export} parameter {usage.index} "
                    f"({usage.name}) is never read by the "
                    "implementation — its fault injections are "
                    "indistinguishable no-ops",
                    symbol=site.qualname,
                    suggestion=f"decode it explicitly (e.g. "
                               f"`frame.uint({usage.index})  # "
                               f"{usage.name}: accepted as-is`) or "
                               "validate it")

    def _project_findings(self, modules) -> Iterable[Finding]:
        from .callgraph import callgraph_for

        graph = callgraph_for(modules)
        roles = graph.roles()
        if not roles:
            return
        roots: list = []
        for role_roots in roles.values():
            roots.extend(role_roots)
        for key in sorted(graph.reachable_from(roots)):
            summary = graph.summaries.get(key)
            if summary is None or summary.node is None:
                continue
            node = summary.node
            if not isinstance(node, ast.FunctionDef) or \
                    _is_trivial_body(node.body):
                continue
            loaded = {n.id for n in _function_scope_nodes(node)
                      if isinstance(n, ast.Name)}
            arguments = node.args
            formals = [a.arg for a in (arguments.posonlyargs +
                                       arguments.args +
                                       arguments.kwonlyargs)]
            for formal in formals[:1] if summary.class_name else []:
                loaded.add(formal)  # self/cls is the receiver, not data
            for formal in formals:
                if formal.startswith("_") or formal in loaded:
                    continue
                module_name, qualname = key
                yield Finding(
                    self.name, summary_path(graph, key), node.lineno,
                    f"parameter {formal} of {qualname} is never read "
                    "on any path",
                    symbol=qualname,
                    suggestion=f"drop {formal}, or prefix it with an "
                               "underscore to mark it deliberate")


def summary_path(graph, key) -> str:
    """Display path for a call-graph function key."""
    module_name, _qualname = key
    index = graph.project.modules.get(module_name)
    return index.path if index is not None else module_name


class UseBeforeValidateRule(Rule):
    """A nullable value consumed on a path before its only check.

    Covers kernel32 implementations (locals bound from the optional /
    resolving frame accessors, which return None for absent values) and
    role-reachable project functions (parameters None-checked *after*
    their first dereference).  The check-after-use shape means the
    validation can never protect the earlier use.
    """

    name = "use-before-validate"
    family = "valueflow"
    description = ("validate nullable values before the first "
                   "dereference, not after")

    def check_project(self,
                      modules: Sequence[ParsedModule]) -> Iterable[Finding]:
        flow = valueflow_for(modules)
        for export in sorted(flow.sites):
            site = flow.sites[export]
            nullable = self._nullable_locals(site.node)
            yield from self._scan(site.node, nullable, site.path,
                                  site.qualname)
        yield from self._project_findings(modules)

    def _project_findings(self, modules) -> Iterable[Finding]:
        from .callgraph import callgraph_for

        graph = callgraph_for(modules)
        roles = graph.roles()
        if not roles:
            return
        roots: list = []
        for role_roots in roles.values():
            roots.extend(role_roots)
        for key in sorted(graph.reachable_from(roots)):
            summary = graph.summaries.get(key)
            if summary is None or summary.node is None:
                continue
            node = summary.node
            if not isinstance(node, ast.FunctionDef):
                continue
            arguments = node.args
            formals = [a.arg for a in (arguments.posonlyargs +
                                       arguments.args +
                                       arguments.kwonlyargs)]
            if summary.class_name and formals:
                formals = formals[1:]
            _module_name, qualname = key
            yield from self._scan(node, set(formals),
                                  summary_path(graph, key), qualname)

    @staticmethod
    def _nullable_locals(node: ast.FunctionDef) -> set:
        names = set()
        for current in _function_scope_nodes(node):
            if not isinstance(current, ast.Assign):
                continue
            value = current.value
            if isinstance(value, ast.Call) and \
                    isinstance(value.func, ast.Attribute) and \
                    value.func.attr in NULLABLE_ACCESSORS:
                for target in current.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    def _scan(self, node: ast.FunctionDef, names: set, path: str,
              qualname: str) -> Iterable[Finding]:
        if not names:
            return
        first_use: dict[str, int] = {}
        first_check: dict[str, int] = {}
        rebound_before_check: set = set()
        for current in ast.walk(node):
            if isinstance(current, (ast.If, ast.While, ast.Assert)):
                test = current.test
                for name in self._checked_names(test):
                    if name in names and name not in first_check:
                        first_check[name] = test.lineno
            if isinstance(current, ast.Assign):
                # A (re)binding from a nullable accessor *defines* the
                # value; any other rebind makes later checks refer to a
                # different value, so suppress.
                value = current.value
                defines = (isinstance(value, ast.Call)
                           and isinstance(value.func, ast.Attribute)
                           and value.func.attr in NULLABLE_ACCESSORS)
                if not defines:
                    for target in current.targets:
                        if isinstance(target, ast.Name) and \
                                target.id in names and \
                                target.id not in first_check:
                            rebound_before_check.add(target.id)
            used = None
            if isinstance(current, ast.Attribute) and \
                    isinstance(current.value, ast.Name):
                used = current.value.id
            elif isinstance(current, ast.Subscript) and \
                    isinstance(current.value, ast.Name):
                used = current.value.id
            elif isinstance(current, ast.Call) and \
                    isinstance(current.func, ast.Name):
                used = current.func.id
            if used in names and used not in first_use:
                first_use[used] = current.lineno
        for name in sorted(names):
            use_line = first_use.get(name)
            check_line = first_check.get(name)
            if use_line is None or check_line is None or \
                    use_line >= check_line or \
                    name in rebound_before_check:
                continue
            yield Finding(
                self.name, path, use_line,
                f"{name} is dereferenced here but its None-check only "
                f"happens later (line {check_line}) — the validation "
                "cannot protect this use",
                symbol=qualname,
                suggestion=f"hoist the `if {name} is None` check above "
                           f"line {use_line}")

    @staticmethod
    def _checked_names(test: ast.expr) -> Iterable[str]:
        """Names whose truthiness / None-ness the condition observes."""
        queue = [test]
        while queue:
            current = queue.pop()
            if isinstance(current, ast.BoolOp):
                queue.extend(current.values)
            elif isinstance(current, ast.UnaryOp) and \
                    isinstance(current.op, ast.Not):
                queue.append(current.operand)
            elif isinstance(current, ast.Name):
                yield current.id
            elif isinstance(current, ast.Compare):
                operands = [current.left, *current.comparators]
                nones = any(isinstance(op, ast.Constant) and
                            op.value is None for op in operands)
                if nones:
                    for operand in operands:
                        if isinstance(operand, ast.Name):
                            yield operand.id

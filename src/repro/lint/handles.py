"""Handle-leak detector.

DTS's long-running campaigns made handle exhaustion a first-class
failure mode: a server that opens its configuration file on every
request and never calls ``CloseHandle`` degrades for hours before it
finally fails, which the paper's availability model charges as
downtime nobody noticed starting.  This pass finds the pattern at its
root: a ``CreateFile``/``CreateEvent``-style acquisition bound to a
local name that is neither released nor handed to anything that could
release it before the function ends.

The analysis is function-local and name-based:

- *acquired*: ``h = yield from k32.CreateFileA(...)`` (or any export in
  :data:`ACQUIRE_CLOSERS`), and likewise
  ``conn = yield from transport.connect(...)`` / ``transport.accept``
  for simulated network connections;
- *released*: ``h`` appears as an argument to the acquisition's
  closing export (``CloseHandle``, ``FindClose``, ``FreeLibrary``,
  ``_lclose``, libc ``close``/``free``, ``transport.close``);
- *escaped*: ``h`` is returned, yielded, stored into an attribute,
  subscript or alias, or passed to any call that is not a simulated
  k32/libc/transport call — whoever received it owns the close now.
  ``transport.handoff`` transfers connection ownership explicitly and
  counts as an escape.

The transport half of the rule exists because of a real bug: the load
clients' retry loops reconnected after a timeout without closing the
timed-out connection, so every retry leaked a half-open socket the
end-of-run hygiene check then reported.  A missing ``close`` on any
retry path is exactly the name-based pattern this pass catches.

A handle that is acquired but neither released nor escaped on *any*
path is reported.  (The analysis is deliberately path-insensitive: a
close reachable on only one branch counts as released; the
unchecked-return rule covers the failure-propagation half of that
story.)
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional

from .core import (
    Finding,
    ParsedModule,
    Rule,
    iter_functions,
    sim_api_call,
    unwrap_yield,
    walk_in_scope,
)

RULE = "handle-leak"

# acquisition export -> the exports that release its result
_K32_CLOSERS = ("CloseHandle",)
ACQUIRE_CLOSERS: dict[str, tuple[str, ...]] = {
    **{name: _K32_CLOSERS for name in (
        "CreateFileA", "CreateFileW", "CreateEventA", "CreateEventW",
        "CreateMutexA", "CreateMutexW", "CreateSemaphoreA",
        "CreateSemaphoreW", "CreateWaitableTimerA", "CreateWaitableTimerW",
        "OpenEventA", "OpenEventW", "OpenMutexA", "OpenMutexW",
        "OpenSemaphoreA", "OpenSemaphoreW", "OpenWaitableTimerA",
        "OpenWaitableTimerW", "OpenProcess", "OpenFileMappingA",
        "OpenFileMappingW", "CreateFileMappingA", "CreateFileMappingW",
        "CreateNamedPipeA", "CreateNamedPipeW", "CreateMailslotA",
        "CreateMailslotW", "CreateIoCompletionPort", "CreateThread",
        "CreateRemoteThread",
    )},
    "FindFirstFileA": ("FindClose",),
    "FindFirstFileW": ("FindClose",),
    "LoadLibraryA": ("FreeLibrary",),
    "LoadLibraryW": ("FreeLibrary",),
    "LoadLibraryExA": ("FreeLibrary",),
    "LoadLibraryExW": ("FreeLibrary",),
    "_lopen": ("_lclose",),
    "_lcreat": ("_lclose",),
}
LIBC_ACQUIRE_CLOSERS: dict[str, tuple[str, ...]] = {
    "open": ("close",),
    "malloc": ("free", "realloc"),
    "calloc": ("free", "realloc"),
}
# Simulated network connections: both ends of the connect/accept pair
# own a close.  ``handoff`` is handled separately as an ownership
# transfer, not a closer.
TRANSPORT_ACQUIRE_CLOSERS: dict[str, tuple[str, ...]] = {
    "connect": ("close",),
    "accept": ("close",),
}
_TRANSPORT_ESCAPES = ("handoff",)


def _transport_call(node: ast.AST) -> Optional[tuple[str, ast.Call]]:
    """Recognise ``transport.name(...)`` / ``ctx.machine.transport.name(...)``
    — any call whose receiver chain ends in ``transport``.  Returns
    ``(method, call)`` or None."""
    if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
        return None
    receiver = node.func.value
    if isinstance(receiver, ast.Name):
        api = receiver.id
    elif isinstance(receiver, ast.Attribute):
        api = receiver.attr
    else:
        return None
    if api != "transport":
        return None
    return node.func.attr, node


class _Acquisition:
    __slots__ = ("name", "export", "line", "closers", "closed", "escaped")

    def __init__(self, name: str, export: str, line: int,
                 closers: tuple[str, ...]):
        self.name = name
        self.export = export
        self.line = line
        self.closers = closers
        self.closed = False
        self.escaped = False


def _names_in(node: ast.AST) -> set[str]:
    return {sub.id for sub in ast.walk(node) if isinstance(sub, ast.Name)}


class HandleLeakRule(Rule):
    name = RULE
    description = ("handle acquisitions must be closed or handed off "
                   "before the function ends")

    def check_module(self, module: ParsedModule) -> Iterable[Finding]:
        findings: list[Finding] = []
        for qualname, fn in iter_functions(module.tree):
            findings.extend(self._check_function(module, qualname, fn))
        return findings

    # ------------------------------------------------------------------
    def _check_function(self, module: ParsedModule, qualname: str,
                        fn: ast.AST) -> Iterator[Finding]:
        acquisitions = self._find_acquisitions(fn)
        if not acquisitions:
            return
        by_name: dict[str, list[_Acquisition]] = {}
        for acq in acquisitions:
            by_name.setdefault(acq.name, []).append(acq)

        for node in walk_in_scope(fn):
            self._classify(node, by_name)

        for acq in acquisitions:
            if not acq.closed and not acq.escaped:
                yield Finding(
                    RULE, module.path, acq.line,
                    f"handle {acq.name!r} from {acq.export} is never "
                    f"released ({' / '.join(acq.closers)}) or handed off",
                    symbol=qualname)

    # ------------------------------------------------------------------
    def _find_acquisitions(self, fn: ast.AST) -> list[_Acquisition]:
        found = []
        for node in walk_in_scope(fn):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)):
                continue
            value = unwrap_yield(node.value)
            matched = sim_api_call(value)
            if matched is not None:
                api, export, _ = matched
                table = (ACQUIRE_CLOSERS if api == "k32"
                         else LIBC_ACQUIRE_CLOSERS)
                closers = table.get(export)
            else:
                transport_matched = _transport_call(value)
                if transport_matched is None:
                    continue
                export, _ = transport_matched
                closers = TRANSPORT_ACQUIRE_CLOSERS.get(export)
            if closers is None:
                continue
            target = node.targets[0].id
            if target == "_":
                continue  # deliberate discard; unchecked-return territory
            found.append(_Acquisition(target, export, node.lineno, closers))
        return found

    # ------------------------------------------------------------------
    def _classify(self, node: ast.AST,
                  by_name: dict[str, list[_Acquisition]]) -> None:
        matched = sim_api_call(node)
        if matched is None:
            transport_matched = _transport_call(node)
            if transport_matched is not None:
                export, call = transport_matched
                matched = ("transport", export, call)
        if matched is not None:
            _, export, call = matched
            arg_names = set()
            for arg in call.args:
                arg_names |= _names_in(arg)
            for keyword in call.keywords:
                arg_names |= _names_in(keyword.value)
            if export in _TRANSPORT_ESCAPES:
                self._mark_escaped(arg_names, by_name)
                return
            for name in sorted(arg_names & by_name.keys()):
                for acq in by_name[name]:
                    if export in acq.closers:
                        acq.closed = True
            return

        if isinstance(node, ast.Call):
            # Not a simulated library call: passing the handle transfers
            # ownership (the callee may close it).
            escaped = set()
            for arg in node.args:
                escaped |= _names_in(arg)
            for keyword in node.keywords:
                escaped |= _names_in(keyword.value)
            self._mark_escaped(escaped, by_name)
        elif isinstance(node, ast.Return) and node.value is not None:
            self._mark_escaped(_names_in(node.value), by_name)
        elif isinstance(node, ast.Yield) and node.value is not None:
            self._mark_escaped(_names_in(node.value), by_name)
        elif isinstance(node, ast.YieldFrom):
            if (sim_api_call(node.value) is None
                    and _transport_call(node.value) is None):
                self._mark_escaped(_names_in(node.value), by_name)
        elif isinstance(node, ast.Assign):
            # `size = yield from k32.GetFileSize(handle, ...)` or
            # `reply = yield from transport.recv(conn, ...)` is a
            # neutral use; `self.h = handle` or `alias = handle` is an
            # escape — the handle now outlives this name's analysis.
            value = unwrap_yield(node.value)
            if sim_api_call(value) is None and _transport_call(value) is None:
                self._mark_escaped(_names_in(node.value), by_name)

    @staticmethod
    def _mark_escaped(names: set[str],
                      by_name: dict[str, list[_Acquisition]]) -> None:
        for name in sorted(names & by_name.keys()):
            for acq in by_name[name]:
                acq.escaped = True

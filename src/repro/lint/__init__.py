"""``repro.lint`` — DTS-aware static analysis for the reproduction.

Twelve passes over the codebase, each rooted in a property the paper's
method depends on, checked here before anything runs.  Five are
per-file pattern matchers; ``yield-race`` and ``determinism`` sit on a
shared whole-program engine (:mod:`repro.lint.engine`) that models the
cooperative substrate: per-generator segment CFGs cut at ``yield``
points, module symbol tables, and delegation-aware suspension
reachability.  ``error-propagation``, ``corruption-escape``, and
``fault-reachability`` add an interprocedural tier on top
(:mod:`repro.lint.callgraph`): a whole-program call graph rooted at
the process-image registrations, with per-function dataflow summaries.
The newest tier (:mod:`repro.lint.valueflow`, family ``valueflow``)
abstractly interprets every intercepted kernel32 implementation to
compute per-parameter usage facts; the same facts power the
``dead-param`` / ``use-before-validate`` rules and the static
fault-equivalence manifest that ``repro run --prune-equivalent``
uses to collapse the campaign grid.

==========================  ==========================================
rule                        catches
==========================  ==========================================
``signature-conformance``   implementations / call sites that drift
                            from the 681-export registry, and calls
                            that bypass the interception layer
``unchecked-return``        discarded HANDLE/BOOL results of simulated
                            library calls (error-propagation hazard)
``error-propagation``       detected failures that die before a caller
                            can act: dropped error-signalling results,
                            must-check results used without ever being
                            examined, inert failure branches
``corruption-escape``       values tainted by injectable parameters
                            flowing unvalidated into restart-surviving
                            state (filesystem writes, the NT event
                            log, machine-rooted / module-global stores)
``fault-reachability``      fault-list entries targeting functions no
                            registered workload role can statically
                            reach — dead fault space
``handle-leak``             acquisitions never released or handed off
``sim-hang``                generator loops that never yield to the
                            discrete-event engine (delegation-aware:
                            ``yield from`` only counts if the delegate
                            can actually suspend)
``yield-race``              shared state carried across a suspension
                            point without re-validation — lost
                            updates and check-then-act races between
                            cooperatively scheduled coroutines
``determinism``             serial-vs-pool bit-identity breakers:
                            wall clock / entropy reads, process-global
                            RNG, hash-salted set iteration order,
                            iterated ``id()``-keyed containers
``fault-space``             fault-list files / inline FaultSpecs that
                            name faults the registry cannot inject
``dead-param``              intercepted-signature parameters whose
                            implementation never reads them, and
                            role-reachable helpers with never-loaded
                            formals — fault space that cannot activate
``use-before-validate``     values from nullable accessors
                            dereferenced before the null check that
                            the surrounding code performs later
==========================  ==========================================

Run via ``python -m repro lint [--format text|json|sarif] [--jobs N]
[--baseline lint-baseline.json] [--update-baseline] [--rules/--select
NAMES] [--census-diff [--census-store STORE.jsonl]] [--equiv-check
[--equiv-sample N]] [--emit-equivalence FILE] [paths...]``; exit code
0 means clean (a note is printed when findings exist but every one is
baseline-suppressed), 1 means non-baselined findings (or unexplained
census activations, or equivalence-oracle divergence), 2 means a
usage error.
"""

from .callgraph import CallGraph, callgraph_for
from .censusdiff import CensusReport, census_diff
from .core import (
    Analyzer,
    FaultListFile,
    Finding,
    LintResult,
    ParsedModule,
    Rule,
    apply_baseline,
    baseline_entry_path,
    default_rules,
    dump_baseline,
    load_baseline,
    run_lint,
)
from .engine import (
    GeneratorCFG,
    ModuleIndex,
    ProjectIndex,
    build_cfg,
    module_name_for_path,
)
from .sarif import render_sarif
from .valueflow import (
    DeadParamRule,
    EquivalenceManifest,
    UseBeforeValidateRule,
    ValueFlow,
    analyze_valueflow,
    compute_equivalence,
    equiv_check,
    valueflow_for,
)

__all__ = [
    "Analyzer",
    "CallGraph",
    "CensusReport",
    "DeadParamRule",
    "EquivalenceManifest",
    "UseBeforeValidateRule",
    "ValueFlow",
    "FaultListFile",
    "Finding",
    "GeneratorCFG",
    "LintResult",
    "ModuleIndex",
    "ParsedModule",
    "ProjectIndex",
    "Rule",
    "analyze_valueflow",
    "apply_baseline",
    "baseline_entry_path",
    "build_cfg",
    "callgraph_for",
    "census_diff",
    "compute_equivalence",
    "default_rules",
    "dump_baseline",
    "equiv_check",
    "load_baseline",
    "module_name_for_path",
    "render_sarif",
    "run_lint",
    "valueflow_for",
]

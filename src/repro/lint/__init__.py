"""``repro.lint`` — DTS-aware static analysis for the reproduction.

Five passes over the codebase, each rooted in a failure class the
paper measured at runtime, checked here before anything runs:

==========================  ==========================================
rule                        catches
==========================  ==========================================
``signature-conformance``   implementations / call sites that drift
                            from the 681-export registry, and calls
                            that bypass the interception layer
``unchecked-return``        discarded HANDLE/BOOL results of simulated
                            library calls (error-propagation hazard)
``handle-leak``             acquisitions never released or handed off
``sim-hang``                generator loops that never yield to the
                            discrete-event engine
``fault-space``             fault-list files / inline FaultSpecs that
                            name faults the registry cannot inject
==========================  ==========================================

Run via ``python -m repro lint [--format json|text]
[--baseline lint-baseline.json] [paths...]``; exit code 0 means clean,
1 means non-baselined findings, 2 means a usage error.
"""

from .core import (
    Analyzer,
    FaultListFile,
    Finding,
    LintResult,
    ParsedModule,
    Rule,
    apply_baseline,
    default_rules,
    dump_baseline,
    load_baseline,
    run_lint,
)

__all__ = [
    "Analyzer",
    "FaultListFile",
    "Finding",
    "LintResult",
    "ParsedModule",
    "Rule",
    "apply_baseline",
    "default_rules",
    "dump_baseline",
    "load_baseline",
    "run_lint",
]

"""The interprocedural tier: whole-program call graph + summaries.

The segment-CFG engine (:mod:`repro.lint.engine`) models *one*
generator at a time.  The paper's worst failures are invisible at that
granularity: a corrupted parameter crosses an API boundary, an error
return is checked in a helper but swallowed before any caller can act,
corrupted state escapes into data that survives a restart.  Seeing any
of those requires knowing *who calls whom* across the whole tree and
*what flows where* inside each function — which is what this module
builds:

- :class:`FunctionSummary` — one function's dataflow facts: the
  simulated library calls it makes (and whether their results are
  bound, discarded or checked), the in-project calls it makes (with
  result disposition), which names are ever *examined* (compared,
  branched on, boolean-tested), which returns signal failure, which
  values derive from corruptible API results, and which flow into
  restart-surviving sinks.
- :class:`CallGraph` — the summaries for every function of a
  :class:`~repro.lint.engine.ProjectIndex`, linked by resolved call
  edges (direct calls, ``self``/``cls`` methods, cross-module calls
  through import maps including relative imports, ``yield from``
  delegation, calls inside ``lambda`` bodies — the ``ThreadEntry`` /
  ``register_image`` factory idiom — and bound-method references
  passed as arguments).  Roots are discovered from the process-image
  registrations the simulator itself uses: every
  ``register_image(..., role=...)`` / ``spawn(..., role=...)`` site
  names a class whose ``main`` generator is an entry point, keyed by
  the role faults are injected into.

Resolution is deliberately *conservative toward reachability*: an
unresolvable call contributes no edge (the census layer separately
cross-checks the resulting under-approximation against dynamic
evidence), while everything resolvable — however indirectly spelled —
does.  Construction is deterministic: modules and functions are
processed in sorted order, and :meth:`CallGraph.summary` produces a
canonical structure that is invariant under module discovery-order
permutation (property-tested, like the engine's index).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional, Sequence

from .engine import (
    ModuleIndex,
    ProjectIndex,
    attribute_chain,
    module_name_for_path,
)
from .core import ParsedModule, sim_api_call, unwrap_yield

# Function key: (module dotted name, qualified function name).
FuncKey = tuple  # tuple[str, str]

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

# API write calls whose *data* parameter lands in restart-surviving
# storage (the simulated filesystem / a pipe another process persists).
PERSISTENT_WRITE_PARAMS = {
    ("k32", "WriteFile"): 1,
    ("k32", "WriteFileEx"): 1,
    ("k32", "_lwrite"): 1,
    ("libc", "write"): 1,
}

# Failure-test constant values: comparing a result against one of these
# is how the servers spell "did the call fail?".
_FAILURE_CONSTANTS = frozenset({0, False, None})
_INVALID_NAMES = frozenset({
    "INVALID_HANDLE_VALUE", "INVALID_FILE_SIZE", "NULL",
})


def _is_failure_constant(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant):
        value = node.value
        return value is None or value is False or value == 0
    if isinstance(node, ast.Name):
        return node.id in _INVALID_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _INVALID_NAMES
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return all(_is_failure_constant(elt) for elt in node.elts)
    return False


def failure_test(test: ast.AST) -> Optional[tuple[str, bool]]:
    """Classify a branch test as a failure check on one name.

    Returns ``(name, body_is_failure)`` — ``body_is_failure`` is True
    when the *body* of the branch executes on failure (``if not ok:``,
    ``if h in (0, INVALID_HANDLE_VALUE):``), False when the body is the
    success path (``if ok:``, ``if handle != 0:``).  None when the test
    is not a recognisable single-name failure check.
    """
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        inner = failure_test(test.operand)
        if inner is not None:
            return inner[0], not inner[1]
        if isinstance(test.operand, ast.Name):
            return test.operand.id, True
        return None
    if isinstance(test, ast.Name):
        return test.id, False
    if isinstance(test, ast.Compare) and len(test.ops) == 1 and \
            isinstance(test.left, ast.Name):
        name = test.left.id
        op = test.ops[0]
        right = test.comparators[0]
        if _is_failure_constant(right):
            if isinstance(op, (ast.Eq, ast.Is, ast.In)):
                return name, True
            if isinstance(op, (ast.NotEq, ast.IsNot, ast.NotIn)):
                return name, False
        elif isinstance(op, ast.NotEq) and isinstance(right, ast.Constant):
            # `if ok != 1:` — failure is "not the success constant".
            return name, True
        elif isinstance(op, ast.Eq) and isinstance(right, ast.Constant):
            return name, False
    return None


class ApiCall:
    """One simulated library call site inside a function."""

    __slots__ = ("api", "name", "line", "bound", "discarded", "arg_names")

    def __init__(self, api: str, name: str, line: int,
                 bound: tuple = (), discarded: bool = False,
                 arg_names: tuple = ()):
        self.api = api            # "k32" | "libc"
        self.name = name          # export name
        self.line = line
        self.bound = bound        # local names the result was bound to
        self.discarded = discarded
        # Per-position tuples of local names read by each argument.
        self.arg_names = arg_names

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ApiCall {self.api}.{self.name}@{self.line}>"


class CallSite:
    """One resolved in-project call inside a function."""

    __slots__ = ("callee", "line", "bound", "discarded", "arg_names",
                 "via_reference")

    def __init__(self, callee: FuncKey, line: int, bound: tuple = (),
                 discarded: bool = False, arg_names: tuple = (),
                 via_reference: bool = False):
        self.callee = callee
        self.line = line
        self.bound = bound
        self.discarded = discarded
        self.arg_names = arg_names
        # True for edges created by *referencing* a function (a bound
        # method handed to ThreadEntry / CreateThread / a registry)
        # rather than calling it: reachability follows them, but the
        # result-disposition rules must not (there is no result here).
        self.via_reference = via_reference

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CallSite {self.callee}@{self.line}>"


class ReturnInfo:
    """One ``return`` statement, classified."""

    __slots__ = ("line", "kind", "name", "failure_guarded", "names")

    def __init__(self, line: int, kind: str, name: Optional[str],
                 failure_guarded: bool, names: frozenset = frozenset()):
        self.line = line
        # "none" | "false" | "zero" | "name" | "other" | "bare"
        self.kind = kind
        self.name = name              # for kind == "name"
        self.failure_guarded = failure_guarded
        self.names = names            # every local name the value reads

    @property
    def signals_failure(self) -> bool:
        return self.kind in ("none", "false", "zero", "bare") and \
            self.failure_guarded


class SinkUse:
    """A name flowing into restart-surviving state."""

    __slots__ = ("name", "kind", "line", "detail")

    def __init__(self, name: str, kind: str, line: int, detail: str):
        self.name = name
        # "api-write" | "eventlog" | "machine-state" | "global-state"
        self.kind = kind
        self.line = line
        self.detail = detail


class RoleRegistration:
    """One ``register_image`` / ``spawn`` site binding a role to a
    program class."""

    __slots__ = ("role", "class_key", "module", "line")

    def __init__(self, role: str, class_key: FuncKey, module: str,
                 line: int):
        self.role = role
        self.class_key = class_key  # (module, "Class.main")
        self.module = module
        self.line = line


class FunctionSummary:
    """Everything the interprocedural rules need to know about one
    function, derived once from its AST."""

    __slots__ = ("key", "module_name", "qualname", "node", "class_name",
                 "param_names", "api_calls", "calls", "checked_names",
                 "api_arg_uses", "returns", "sinks", "assignments",
                 "swallowed_branches", "subscript_uses")

    def __init__(self, key: FuncKey, node: ast.AST,
                 class_name: Optional[str]):
        self.key = key
        self.module_name, self.qualname = key
        self.node = node
        self.class_name = class_name
        self.param_names: tuple = ()
        self.api_calls: list[ApiCall] = []
        self.calls: list[CallSite] = []
        # name -> first line it was examined (test / compare / boolop)
        self.checked_names: dict[str, int] = {}
        # (local name, api, export, line): name used as an API argument
        self.api_arg_uses: list[tuple] = []
        self.returns: list[ReturnInfo] = []
        self.sinks: list[SinkUse] = []
        # line-ordered (target, frozenset(rhs names), line) — the local
        # dataflow skeleton taint propagation walks.
        self.assignments: list[tuple] = []
        # (line, name) of `if <failure test on name>:` branches whose
        # failure side does nothing at all.
        self.swallowed_branches: list[tuple] = []
        # names dereferenced via subscript/attribute (use sites for the
        # unexamined-result check)
        self.subscript_uses: list[tuple] = []


# ----------------------------------------------------------------------
# Relative import resolution
# ----------------------------------------------------------------------
def resolve_relative(module_name: str, level: int,
                     target: Optional[str], is_package: bool) -> Optional[str]:
    """``from ..net.http import X`` inside ``repro.servers.apache`` ->
    ``repro.net.http``."""
    parts = module_name.split(".")
    if not is_package:
        parts = parts[:-1]
    drop = level - 1
    if drop > len(parts):
        return None
    base = parts[:len(parts) - drop] if drop else parts
    if target:
        base = base + target.split(".")
    return ".".join(base) if base else None


def _module_is_package(path: str) -> bool:
    return path.replace("\\", "/").endswith("__init__.py")


class _ImportMap:
    """One module's name-resolution map, including relative imports
    (which :class:`~repro.lint.engine.ModuleIndex` skips — the race
    rules never needed them, the call graph does)."""

    def __init__(self, module_name: str, index: ModuleIndex):
        self.module_alias: dict[str, str] = dict(index.imports)
        self.symbol: dict[str, tuple] = dict(index.from_imports)
        is_package = _module_is_package(index.path)
        for node in ast.walk(index.tree):
            if isinstance(node, ast.ImportFrom) and node.level:
                resolved = resolve_relative(module_name, node.level,
                                            node.module, is_package)
                if resolved is None:
                    continue
                for alias in node.names:
                    self.symbol[alias.asname or alias.name] = \
                        (resolved, alias.name)

    def imported_symbol(self, name: str) -> Optional[tuple]:
        return self.symbol.get(name)

    def imported_module(self, name: str) -> Optional[str]:
        target = self.module_alias.get(name)
        if target is not None:
            return target
        # `from ..middleware import watchd as watchd_module` binds a
        # *module* through a from-import.
        entry = self.symbol.get(name)
        if entry is not None:
            module, symbol = entry
            return f"{module}.{symbol}"
        return None


# ----------------------------------------------------------------------
# Summary construction
# ----------------------------------------------------------------------
class _SummaryBuilder(ast.NodeVisitor):
    """Walks one function body (lambdas included, nested defs excluded)
    and fills its :class:`FunctionSummary`."""

    def __init__(self, summary: FunctionSummary, resolver: "_Resolver"):
        self.summary = summary
        self.resolver = resolver
        self._failure_guards: list[str] = []  # names guarding this path

    # -- scope fencing --------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested scope: summarised separately

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        # ThreadEntry(lambda: self._stats_thread(ctx)) — the body runs
        # on behalf of this function, so its calls are this function's
        # edges.
        self.visit(node.body)

    # -- statements -----------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        self._handle_assign(node.value, node.targets, node.lineno)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._handle_assign(node.value, [node.target], node.lineno)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._handle_assign(node.value, [node.target], node.lineno,
                            augmented=True)

    def _handle_assign(self, value: ast.expr, targets, line: int,
                       augmented: bool = False) -> None:
        bound = tuple(sorted(
            sub.id for target in targets for sub in ast.walk(target)
            if isinstance(sub, ast.Name)))
        rhs_names = frozenset(
            sub.id for sub in ast.walk(value) if isinstance(sub, ast.Name))
        for name in bound:
            self.summary.assignments.append((name, rhs_names, line))
        inner = unwrap_yield(value)
        handled = self._record_call(inner, line, bound=bound)
        if not handled:
            self.visit(value)
        else:
            self._visit_call_args(inner)
        for target in targets:
            self._record_store(target, rhs_names, line)

    def visit_Expr(self, node: ast.Expr) -> None:
        inner = unwrap_yield(node.value)
        handled = self._record_call(inner, node.lineno, discarded=True)
        if not handled:
            self.visit(node.value)
        else:
            self._visit_call_args(inner)

    def visit_Return(self, node: ast.Return) -> None:
        guarded = bool(self._failure_guards)
        value = node.value
        if value is None:
            info = ReturnInfo(node.lineno, "bare", None, guarded)
        else:
            value = unwrap_yield(value)
            names = frozenset(sub.id for sub in ast.walk(value)
                              if isinstance(sub, ast.Name))
            if isinstance(value, ast.Constant):
                const = value.value
                if const is None:
                    kind = "none"
                elif const is False:
                    kind = "false"
                elif const == 0 and const is not True:
                    kind = "zero"
                else:
                    kind = "other"
                info = ReturnInfo(node.lineno, kind, None, guarded)
            elif isinstance(value, ast.Name):
                info = ReturnInfo(node.lineno, "name", value.id, guarded,
                                  names)
            else:
                info = ReturnInfo(node.lineno, "other", None, guarded,
                                  names)
        self.summary.returns.append(info)
        if node.value is not None:
            self.visit(node.value)

    def visit_If(self, node: ast.If) -> None:
        self._mark_checked(node.test)
        self.visit(node.test)
        verdict = failure_test(node.test)
        if verdict is None:
            for stmt in node.body + node.orelse:
                self.visit(stmt)
            return
        name, body_is_failure = verdict
        failure_side = node.body if body_is_failure else node.orelse
        success_side = node.orelse if body_is_failure else node.body
        if failure_side and _branch_is_inert(failure_side):
            self.summary.swallowed_branches.append((node.lineno, name))
        self._failure_guards.append(name)
        for stmt in failure_side:
            self.visit(stmt)
        self._failure_guards.pop()
        for stmt in success_side:
            self.visit(stmt)

    def visit_While(self, node: ast.While) -> None:
        self._mark_checked(node.test)
        self.generic_visit(node)

    def visit_Assert(self, node: ast.Assert) -> None:
        self._mark_checked(node.test)
        self.generic_visit(node)

    # -- expressions ----------------------------------------------------
    def visit_IfExp(self, node: ast.IfExp) -> None:
        self._mark_checked(node.test)
        self.generic_visit(node)

    def visit_BoolOp(self, node: ast.BoolOp) -> None:
        for operand in node.values:
            self._mark_checked(operand, deep=False)
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        self._mark_checked(node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        handled = self._record_call(node, node.lineno, discarded=False)
        if handled:
            self._visit_call_args(node)
        else:
            self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if isinstance(node.value, ast.Name):
            self.summary.subscript_uses.append(
                (node.value.id, node.lineno))
        self.generic_visit(node)

    # -- helpers --------------------------------------------------------
    def _mark_checked(self, node: ast.AST, deep: bool = True) -> None:
        checked = self.summary.checked_names
        if isinstance(node, ast.Name):
            checked.setdefault(node.id, node.lineno)
            return
        if not deep:
            return
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name):
                checked.setdefault(sub.id, sub.lineno)

    def _arg_name_tuple(self, call: ast.Call) -> tuple:
        names = []
        for arg in call.args:
            arg = arg.value if isinstance(arg, ast.Starred) else arg
            names.append(tuple(sorted(
                sub.id for sub in ast.walk(arg)
                if isinstance(sub, ast.Name))))
        return tuple(names)

    def _visit_call_args(self, call: ast.Call) -> None:
        for arg in call.args:
            self.visit(arg.value if isinstance(arg, ast.Starred) else arg)
        for keyword in call.keywords:
            self.visit(keyword.value)

    def _record_call(self, node: ast.AST, line: int, bound: tuple = (),
                     discarded: bool = False) -> bool:
        """Record an API call or in-project call site.  Returns True if
        ``node`` was a call this builder fully handled."""
        if not isinstance(node, ast.Call):
            return False
        matched = sim_api_call(node)
        if matched is not None:
            api, name, call = matched
            arg_names = self._arg_name_tuple(call)
            self.summary.api_calls.append(ApiCall(
                api, name, line, bound=bound, discarded=discarded,
                arg_names=arg_names))
            for position, names in enumerate(arg_names):
                for arg_name in names:
                    self.summary.api_arg_uses.append(
                        (arg_name, api, name, line))
                    sink_param = PERSISTENT_WRITE_PARAMS.get((api, name))
                    if sink_param == position:
                        self.summary.sinks.append(SinkUse(
                            arg_name, "api-write", line,
                            f"{api}.{name} data parameter"))
            self._check_function_references(call)
            return True
        self.resolver.record_registration(self.summary, node)
        if self._record_eventlog(node, line):
            return False
        callee = self.resolver.resolve(self.summary, node)
        if callee is not None:
            self.summary.calls.append(CallSite(
                callee, line, bound=bound, discarded=discarded,
                arg_names=self._arg_name_tuple(node)))
            self._check_function_references(node)
            return True
        self._check_function_references(node)
        return False

    def _record_eventlog(self, node: ast.Call, line: int) -> bool:
        """``*.eventlog.write(...)`` — the NT event log survives
        restarts; anything logged is persistent state."""
        func = node.func
        if not isinstance(func, ast.Attribute):
            return False
        receiver = func.value
        if isinstance(receiver, ast.Attribute) and \
                receiver.attr == "eventlog":
            for arg in node.args:
                for sub in ast.walk(arg):
                    if isinstance(sub, ast.Name):
                        self.summary.sinks.append(SinkUse(
                            sub.id, "eventlog", line,
                            f"eventlog.{func.attr} argument"))
            return True
        return False

    def _check_function_references(self, call: ast.Call) -> None:
        """Bound methods / functions passed *as values* — CreateThread
        entries, image factories — create reference edges."""
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            target = None
            if isinstance(arg, ast.Attribute) and \
                    isinstance(arg.value, ast.Name) and \
                    arg.value.id in ("self", "cls"):
                target = self.resolver.resolve_method(
                    self.summary, arg.attr)
            elif isinstance(arg, ast.Name):
                target = self.resolver.resolve_name(self.summary, arg.id)
            if target is not None:
                self.summary.calls.append(CallSite(
                    target, arg.lineno, via_reference=True))

    def _record_store(self, target: ast.AST, rhs_names: frozenset,
                      line: int) -> None:
        """Writes into machine-rooted or module-global state are
        restart-surviving sinks: a server process restart replaces the
        program object (``self`` dies), but the machine — filesystem,
        named objects, logs — and module globals carry over."""
        node = target.value if isinstance(target, ast.Subscript) else target
        chain = attribute_chain(node)
        if chain is None or len(chain) < (
                1 if isinstance(target, ast.Subscript) else 2):
            return
        root = chain[0]
        if root == "machine" or (root == "ctx" and "machine" in chain):
            detail = f"machine-rooted state {'.'.join(chain)}"
        elif root in self.resolver.module_globals(self.summary.module_name):
            detail = f"module-global state {'.'.join(chain)}"
        else:
            return
        for name in sorted(rhs_names):
            self.summary.sinks.append(SinkUse(
                name, "persistent-store", line, detail))


def _branch_is_inert(body: Sequence[ast.stmt]) -> bool:
    """A failure branch that neither escalates nor repairs: only
    ``pass``, docstrings or bare constants."""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and \
                isinstance(stmt.value, ast.Constant):
            continue
        return False
    return True


# ----------------------------------------------------------------------
# Resolution across modules
# ----------------------------------------------------------------------
class _Resolver:
    """Resolves call expressions to function keys, project-wide."""

    def __init__(self, graph: "CallGraph"):
        self.graph = graph

    def module_globals(self, module_name: str) -> frozenset:
        index = self.graph.project.modules.get(module_name)
        return index.module_globals if index is not None else frozenset()

    # ------------------------------------------------------------------
    def resolve(self, summary: FunctionSummary,
                call: ast.Call) -> Optional[FuncKey]:
        func = call.func
        module_name = summary.module_name
        if isinstance(func, ast.Name):
            return self.resolve_name(summary, func.id)
        if isinstance(func, ast.Attribute) and \
                isinstance(func.value, ast.Name):
            receiver = func.value.id
            if receiver in ("self", "cls"):
                return self.resolve_method(summary, func.attr)
            # A local instantiated from a known class in this function:
            # `daemon = Watchd(...); daemon.main(ctx)` — or more
            # importantly `machine.processes.spawn(daemon)`.
            class_key = self.graph.local_class(summary, receiver)
            if class_key is not None:
                return self.graph.lookup_method(class_key, func.attr)
            # Module-qualified call: `watchd_module.install(machine)`.
            imports = self.graph.import_map(module_name)
            target_module = imports.imported_module(receiver) \
                if imports else None
            if target_module is not None:
                return self.graph.lookup_function(target_module, func.attr)
        return None

    def resolve_name(self, summary: FunctionSummary,
                     name: str) -> Optional[FuncKey]:
        module_name = summary.module_name
        key = self.graph.lookup_function(module_name, name)
        if key is not None:
            return key
        imports = self.graph.import_map(module_name)
        if imports is not None:
            entry = imports.imported_symbol(name)
            if entry is not None:
                target_module, symbol = entry
                resolved = self.graph.lookup_function(target_module, symbol)
                if resolved is not None:
                    return resolved
                # An imported *class*: its constructor + main matter to
                # reachability only through registrations; constructor
                # edges keep __init__ state analysable.
                return self.graph.lookup_method(
                    (target_module, symbol), "__init__")
        # A class defined in this module, instantiated by bare name.
        return self.graph.lookup_method((module_name, name), "__init__")

    def resolve_method(self, summary: FunctionSummary,
                       name: str) -> Optional[FuncKey]:
        if summary.class_name is None:
            return None
        return self.graph.lookup_method(
            (summary.module_name, summary.class_name), name,
            follow_bases=True)

    # ------------------------------------------------------------------
    def record_registration(self, summary: FunctionSummary,
                            call: ast.Call) -> None:
        """``register_image(name, factory, role=...)`` and
        ``spawn(program, role=...)`` bind roles to program classes."""
        func = call.func
        if not isinstance(func, ast.Attribute) or \
                func.attr not in ("register_image", "spawn"):
            return
        role = None
        for keyword in call.keywords:
            if keyword.arg == "role" and \
                    isinstance(keyword.value, ast.Constant):
                role = keyword.value.value
        if role is None:
            return
        target_arg = call.args[1] if func.attr == "register_image" \
            and len(call.args) >= 2 else (call.args[0] if call.args else None)
        class_key = self._program_class(summary, target_arg)
        if class_key is not None:
            self.graph.registrations.append(RoleRegistration(
                str(role), class_key, summary.module_name, call.lineno))

    def _program_class(self, summary: FunctionSummary,
                       node: Optional[ast.AST]) -> Optional[FuncKey]:
        """The (module, Class) behind a factory lambda, a constructor
        call, or a local bound from one."""
        if node is None:
            return None
        if isinstance(node, ast.Lambda):
            return self._program_class(summary, node.body)
        if isinstance(node, ast.Call):
            ctor = node.func
            if isinstance(ctor, ast.Name):
                return self._class_by_name(summary, ctor.id)
            if isinstance(ctor, ast.Attribute) and \
                    isinstance(ctor.value, ast.Name):
                imports = self.graph.import_map(summary.module_name)
                target_module = imports.imported_module(ctor.value.id) \
                    if imports else None
                if target_module is not None and \
                        self.graph.has_class((target_module, ctor.attr)):
                    return (target_module, ctor.attr)
            return None
        if isinstance(node, ast.Name):
            local = self.graph.local_class(summary, node.id)
            if local is not None:
                return local
            return self._class_by_name(summary, node.id)
        return None

    def _class_by_name(self, summary: FunctionSummary,
                       name: str) -> Optional[FuncKey]:
        module_name = summary.module_name
        if self.graph.has_class((module_name, name)):
            return (module_name, name)
        imports = self.graph.import_map(module_name)
        if imports is not None:
            entry = imports.imported_symbol(name)
            if entry is not None and self.graph.has_class(entry):
                return entry
        return None


# ----------------------------------------------------------------------
# The graph
# ----------------------------------------------------------------------
class CallGraph:
    """Summaries + resolved edges + role roots for a whole project."""

    def __init__(self, project: ProjectIndex):
        self.project = project
        self.summaries: dict[FuncKey, FunctionSummary] = {}
        self.registrations: list[RoleRegistration] = []
        self._import_maps: dict[str, _ImportMap] = {}
        self._classes: dict[FuncKey, ast.ClassDef] = {}
        self._class_bases: dict[FuncKey, tuple] = {}
        self._build()

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, modules: Sequence[ParsedModule]) -> "CallGraph":
        return cls(ProjectIndex.build(modules))

    def _build(self) -> None:
        for module_name in sorted(self.project.modules):
            index = self.project.modules[module_name]
            self._collect_classes(module_name, index.tree)
        resolver = _Resolver(self)
        for module_name in sorted(self.project.modules):
            index = self.project.modules[module_name]
            for qualname in sorted(index.functions):
                info = index.functions[qualname]
                summary = FunctionSummary(
                    (module_name, qualname), info.node, info.class_name)
                summary.param_names = tuple(
                    arg.arg for arg in
                    list(info.node.args.posonlyargs)
                    + list(info.node.args.args)
                    + list(info.node.args.kwonlyargs))
                self.summaries[summary.key] = summary
        # Summaries must all exist before edges resolve (forward calls).
        for key in sorted(self.summaries):
            summary = self.summaries[key]
            builder = _SummaryBuilder(summary, resolver)
            for stmt in summary.node.body:
                builder.visit(stmt)
        self.registrations.sort(
            key=lambda reg: (reg.role, reg.module, reg.line))

    def _collect_classes(self, module_name: str, tree: ast.Module,
                         prefix: str = "") -> None:
        for node in ast.iter_child_nodes(tree):
            if isinstance(node, ast.ClassDef):
                key = (module_name, f"{prefix}{node.name}")
                self._classes[key] = node
                self._class_bases[key] = tuple(
                    base.id for base in node.bases
                    if isinstance(base, ast.Name))
                self._collect_classes(module_name, node,
                                      prefix=f"{prefix}{node.name}.")

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def import_map(self, module_name: str) -> Optional[_ImportMap]:
        cached = self._import_maps.get(module_name)
        if cached is None:
            index = self.project.modules.get(module_name)
            if index is None:
                return None
            cached = _ImportMap(module_name, index)
            self._import_maps[module_name] = cached
        return cached

    def has_class(self, class_key: FuncKey) -> bool:
        return class_key in self._classes

    def lookup_function(self, module_name: str,
                        name: str) -> Optional[FuncKey]:
        index = self.project.modules.get(module_name)
        if index is None:
            return None
        info = index.functions.get(name)
        if info is not None and info.class_name is None:
            return (module_name, name)
        return None

    def lookup_method(self, class_key: FuncKey, method: str,
                      follow_bases: bool = False) -> Optional[FuncKey]:
        module_name, class_name = class_key
        key = (module_name, f"{class_name}.{method}")
        if key in self.summaries:
            return key
        if follow_bases:
            for base in self._class_bases.get(class_key, ()):
                resolved = self.lookup_method((module_name, base), method,
                                              follow_bases=True)
                if resolved is not None:
                    return resolved
        return None

    def local_class(self, summary: FunctionSummary,
                    local: str) -> Optional[FuncKey]:
        """Best-effort local type inference: the class whose constructor
        last bound ``local`` inside ``summary``."""
        resolver = _Resolver(self)
        result = None
        for node in ast.walk(summary.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                    isinstance(node.targets[0], ast.Name) and \
                    node.targets[0].id == local and \
                    isinstance(node.value, ast.Call):
                key = resolver._program_class(summary, node.value)
                if key is not None:
                    result = key
        return result

    # ------------------------------------------------------------------
    # Roots and reachability
    # ------------------------------------------------------------------
    def roles(self) -> dict[str, list[FuncKey]]:
        """role -> entry function keys (``Class.main``), sorted."""
        table: dict[str, list[FuncKey]] = {}
        for reg in self.registrations:
            main = self.lookup_method(reg.class_key, "main",
                                      follow_bases=True)
            if main is None:
                continue
            bucket = table.setdefault(reg.role, [])
            if main not in bucket:
                bucket.append(main)
        return {role: sorted(keys) for role, keys in sorted(table.items())}

    def root_keys(self) -> list[FuncKey]:
        """Every registered program entry point, deduplicated."""
        roots: set = set()
        for keys in self.roles().values():
            roots.update(keys)
        return sorted(roots)

    def reachable_from(self, roots: Iterable[FuncKey]) -> set:
        """Transitive closure over call edges (references included)."""
        seen: set = set()
        stack = [key for key in roots if key in self.summaries]
        while stack:
            key = stack.pop()
            if key in seen:
                continue
            seen.add(key)
            for site in self.summaries[key].calls:
                if site.callee in self.summaries and site.callee not in seen:
                    stack.append(site.callee)
        return seen

    def reachable_api(self, roots: Iterable[FuncKey]) -> set:
        """All (api, export) pairs reachable from the given roots."""
        exports: set = set()
        for key in self.reachable_from(roots):
            for api_call in self.summaries[key].api_calls:
                exports.add((api_call.api, api_call.name))
        return exports

    def callers_of(self, key: FuncKey) -> list[tuple[FuncKey, CallSite]]:
        out = []
        for caller_key in sorted(self.summaries):
            for site in self.summaries[caller_key].calls:
                if site.callee == key:
                    out.append((caller_key, site))
        return out

    # ------------------------------------------------------------------
    # Derived interprocedural sets
    # ------------------------------------------------------------------
    def error_producers(self) -> dict[FuncKey, str]:
        """Functions whose return value signals failure.

        Seeds: a failure-guarded ``return None/False/0`` (the helper
        detected the error and told its caller), or returning the raw
        result of a must-check API call.  Closure: returning another
        producer's result propagates the signal one level up.

        A function whose *every* return is valueless is not a producer:
        its failure return is indistinguishable from its success return
        (the guard-clause / finding-generator early-exit idiom), so no
        caller could act on the result anyway.
        """
        producers: dict[FuncKey, str] = {}
        for key in sorted(self.summaries):
            summary = self.summaries[key]
            if not any(info.kind in ("name", "other")
                       for info in summary.returns):
                continue
            for info in summary.returns:
                if info.signals_failure:
                    spelled = {"none": "None", "false": "False",
                               "zero": "0", "bare": "None"}[info.kind]
                    producers[key] = (
                        f"returns {spelled} on a detected failure")
                    break
        changed = True
        while changed:
            changed = False
            for key in sorted(self.summaries):
                if key in producers:
                    continue
                summary = self.summaries[key]
                bound_calls = {
                    name: site.callee for site in summary.calls
                    if not site.via_reference for name in site.bound}
                for info in summary.returns:
                    if info.kind != "name" or info.name not in bound_calls:
                        continue
                    callee = bound_calls[info.name]
                    if callee in producers and \
                            info.name not in summary.checked_names:
                        producers[key] = (
                            f"passes through the failure return of "
                            f"{callee[1]}")
                        changed = True
                        break
        return producers

    def sink_params(self) -> dict[FuncKey, set]:
        """param position -> flows into a restart-surviving sink,
        computed to fixpoint across call edges."""
        table: dict[FuncKey, set] = {key: set() for key in self.summaries}
        for key in sorted(self.summaries):
            summary = self.summaries[key]
            tainted = _local_flow_closure(summary, set(summary.param_names))
            positions = {name: idx
                         for idx, name in enumerate(summary.param_names)}
            for sink in summary.sinks:
                origin = _flows_from(summary, sink.name, positions, tainted)
                table[key].update(origin)
        changed = True
        while changed:
            changed = False
            for key in sorted(self.summaries):
                summary = self.summaries[key]
                positions = {name: idx
                             for idx, name in enumerate(summary.param_names)}
                for site in summary.calls:
                    if site.via_reference or site.callee not in table:
                        continue
                    callee_sinks = table[site.callee]
                    if not callee_sinks:
                        continue
                    for arg_pos, names in enumerate(site.arg_names):
                        # map callee positional param (self-shifted)
                        callee_summary = self.summaries[site.callee]
                        shift = 1 if callee_summary.param_names[:1] in \
                            (("self",), ("cls",)) and \
                            callee_summary.class_name is not None else 0
                        if arg_pos + shift not in callee_sinks:
                            continue
                        for name in names:
                            if name in positions and \
                                    positions[name] not in table[key]:
                                table[key].add(positions[name])
                                changed = True
        return table

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Canonical, order-independent description (stability tests)."""
        roles = {role: [list(key) for key in keys]
                 for role, keys in self.roles().items()}
        functions = {}
        for key in sorted(self.summaries):
            s = self.summaries[key]
            functions["{}::{}".format(*key)] = {
                "api": sorted({(c.api, c.name) for c in s.api_calls}),
                "calls": sorted({"{}::{}".format(*site.callee)
                                 for site in s.calls}),
                "returns": [(r.line, r.kind, r.failure_guarded)
                            for r in s.returns],
            }
        return {"roles": roles, "functions": functions}


def _local_flow_closure(summary: FunctionSummary,
                        seeds: set) -> set:
    """Names transitively assigned from ``seeds`` inside one function."""
    tainted = set(seeds)
    for _ in range(2):  # two passes close simple forward+loop flows
        for target, rhs_names, _line in summary.assignments:
            if rhs_names & tainted:
                tainted.add(target)
    return tainted


def _flows_from(summary: FunctionSummary, name: str,
                positions: dict, tainted_params: set) -> set:
    """Which of the function's param positions can reach ``name``."""
    if name in positions:
        return {positions[name]}
    if name in tainted_params:
        # reached through local assignments — attribute to every param
        # that feeds it (conservative: walk assignment skeleton back)
        sources: set = set()
        frontier = {name}
        for _ in range(4):
            next_frontier: set = set()
            for target, rhs_names, _line in summary.assignments:
                if target in frontier:
                    for rhs in rhs_names:
                        if rhs in positions:
                            sources.add(positions[rhs])
                        elif rhs in tainted_params:
                            next_frontier.add(rhs)
            frontier = next_frontier
            if not frontier:
                break
        return sources
    return set()


# ----------------------------------------------------------------------
# Shared single-slot cache
# ----------------------------------------------------------------------
# The three interprocedural passes (error-propagation, corruption-
# escape, fault-reachability) run back-to-back over the same parsed
# module list; building the graph once per *run* instead of once per
# rule keeps the whole tier inside its <2x wall-time budget.  Keyed by
# tree identity so a re-parse (different run) misses.
_CACHE: list = [None, None]  # [key, graph]


def callgraph_for(modules: Sequence[ParsedModule]) -> CallGraph:
    key = tuple((module.path, id(module.tree)) for module in modules)
    if _CACHE[0] == key:
        return _CACHE[1]
    graph = CallGraph.build(modules)
    _CACHE[0] = key
    _CACHE[1] = graph
    return graph

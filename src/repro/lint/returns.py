"""Unchecked-return detector — the paper's error-propagation hazard.

Section 4.3's diagnosis of the worst failures is not exotic corruption
but ordinary sloppiness: *the return value of a failed library call was
never examined*, so a NULL handle or FALSE status flowed on until the
process crashed or, worse, kept serving wrong answers.  This pass flags
simulated kernel32/libc call sites whose HANDLE or BOOL result is
discarded outright::

    yield from k32.CreateEventA(None, True, False, name)   # flagged
    handle = yield from k32.CreateFileA(...)               # checked (ok)
    _ = yield from k32.WriteFile(...)                      # explicit discard

Assigning to ``_`` is the documented opt-out for genuinely fire-and-
forget calls; everything else that discards a must-check result is a
finding.  Only result-bearing acquisition and I/O functions are
must-check — discarding ``CloseHandle``'s BOOL, for instance, is
idiomatic and stays silent.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from .core import (
    Finding,
    ParsedModule,
    Rule,
    iter_functions,
    sim_api_call,
    unwrap_yield,
    walk_in_scope,
)

RULE = "unchecked-return"

# Exports whose result is a HANDLE (or handle-like fd/pointer): losing
# the value both hides failure and leaks the object.
HANDLE_RETURNING = frozenset({
    "CreateFileA", "CreateFileW", "CreateEventA", "CreateEventW",
    "CreateMutexA", "CreateMutexW", "CreateSemaphoreA", "CreateSemaphoreW",
    "CreateWaitableTimerA", "CreateWaitableTimerW",
    "OpenEventA", "OpenEventW", "OpenMutexA", "OpenMutexW",
    "OpenSemaphoreA", "OpenSemaphoreW", "OpenWaitableTimerA",
    "OpenWaitableTimerW", "OpenProcess", "OpenFileMappingA",
    "OpenFileMappingW", "CreateFileMappingA", "CreateFileMappingW",
    "CreateNamedPipeA", "CreateNamedPipeW", "CreateMailslotA",
    "CreateMailslotW", "CreateIoCompletionPort", "CreateThread",
    "CreateRemoteThread", "FindFirstFileA", "FindFirstFileW",
    "LoadLibraryA", "LoadLibraryW", "LoadLibraryExA", "LoadLibraryExW",
    "HeapCreate", "HeapAlloc", "GlobalAlloc", "LocalAlloc", "VirtualAlloc",
    "VirtualAllocEx", "MapViewOfFile", "MapViewOfFileEx",
    "_lopen", "_lcreat",
})

# BOOL/status I/O whose FALSE return is precisely the failure the paper
# watched applications ignore.
BOOL_MUST_CHECK = frozenset({
    "ReadFile", "ReadFileEx", "WriteFile", "WriteFileEx",
    "CreateProcessA", "CreateProcessW", "CreatePipe",
    "DeleteFileA", "DeleteFileW", "MoveFileA", "MoveFileW",
    "MoveFileExA", "MoveFileExW", "CopyFileA", "CopyFileW",
    "CreateDirectoryA", "CreateDirectoryW", "RemoveDirectoryA",
    "RemoveDirectoryW", "WaitForSingleObject", "WaitForMultipleObjects",
    "DuplicateHandle",
})

LIBC_MUST_CHECK = frozenset({
    "open", "read", "write", "fork", "waitpid", "execve",
    "malloc", "realloc", "calloc", "pipe",
})


def _return_class(api: str, name: str):
    if api == "k32":
        if name in HANDLE_RETURNING:
            return "HANDLE"
        if name in BOOL_MUST_CHECK:
            return "BOOL"
    elif api == "libc" and name in LIBC_MUST_CHECK:
        return "int"
    return None


class UncheckedReturnRule(Rule):
    name = RULE
    description = ("simulated library calls with a HANDLE/BOOL result "
                   "must not discard it")

    def check_module(self, module: ParsedModule) -> Iterable[Finding]:
        findings: list[Finding] = []
        for qualname, fn in iter_functions(module.tree):
            findings.extend(self._check_function(module, qualname, fn))
        return findings

    def _check_function(self, module: ParsedModule, qualname: str,
                        fn: ast.AST) -> Iterator[Finding]:
        for node in walk_in_scope(fn):
            if not isinstance(node, ast.Expr):
                continue
            call = unwrap_yield(node.value)
            matched = sim_api_call(call)
            if matched is None:
                continue
            api, name, _ = matched
            rclass = _return_class(api, name)
            if rclass is None:
                continue
            receiver = api if api == "k32" else "libc"
            yield Finding(
                RULE, module.path, node.lineno,
                f"result of {receiver}.{name} ({rclass}) is discarded — "
                "a failed call goes unnoticed (assign to a name, or to "
                "'_' to discard deliberately)",
                symbol=qualname)

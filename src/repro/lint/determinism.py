"""Determinism sanitizer — serial-vs-pool bit-identity, statically.

The parallel campaign backend promises results *bit-identical* to a
serial run (see ``repro.core.exec``): every run is seeded from the
fault key alone, so worker count and completion order must not be
observable.  Four things silently break that promise, and each is
statically recognisable:

**Wall clock / entropy** — ``time.time()``, ``datetime.now()``,
``os.urandom()``, ``uuid.uuid4()``: different on every run, different
in every worker.  Simulated time comes from ``engine.now``; entropy
from the seeded stream tree in :mod:`repro.sim.rng`.
(``time.monotonic``/``perf_counter`` stay legal — progress meters and
benchmarks measure the *host*, not the simulation.)

**Module-level random** — ``random.random()`` and friends share one
process-global generator: pool workers each see a different sequence,
and even serially, an unrelated consumer added anywhere shifts every
later draw.  ``random.Random()`` with no seed is the same hazard in
object form.  ``repro.sim.rng.RandomStreams`` exists precisely so each
consumer gets its own seeded stream.

**Set iteration order** — ``str`` hashes are salted per process
(PYTHONHASHSEED), so iterating a ``set`` — including set algebra like
``a & b.keys()`` — visits elements in a process-dependent order.  Fed
into event scheduling or fault ordering, that is a different campaign
per worker.  ``dict`` views are *not* flagged: insertion order is
guaranteed and our insertions are deterministic.

**id()-keyed containers** — ``id()`` values are memory addresses;
keying a container by them is fine for pure lookup (``repro.nt.memory``
interns objects that way) but iterating such a container — even via
``sorted()`` — orders by addresses that change run to run.  Flagged
only when the module both id-keys a container *and* iterates it.

Findings carry fix-it suggestions pointing at the sanctioned
replacement.  Set-typed-ness is inferred through the module index
(:mod:`repro.lint.engine`): local assignments, ``self.*`` assignments
anywhere in the class, and ``set``/``frozenset`` annotations all count.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from .core import Finding, ParsedModule, Rule, walk_in_scope
from .engine import ModuleIndex, attribute_chain, chain_text

RULE = "determinism"

# (module, attribute) pairs that read the host clock or entropy pool.
_WALLCLOCK_CALLS = {
    ("time", "time"): "engine.now (virtual time)",
    ("time", "time_ns"): "engine.now (virtual time)",
    ("os", "urandom"): "repro.sim.rng (seeded streams)",
    ("uuid", "uuid1"): "a seeded stream or a sequence number",
    ("uuid", "uuid4"): "a seeded stream or a sequence number",
}
# Methods of datetime.datetime / datetime.date that read the clock.
_DATETIME_NOW = frozenset({"now", "utcnow", "today"})
_DATETIME_CLASSES = frozenset({"datetime", "date"})

_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})
_SET_OPS = (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
# Calls that realise their argument's iteration order.
_ORDER_REALISERS = frozenset({"list", "tuple", "enumerate", "iter"})

_ID_KEY_ADDERS = frozenset({"add", "append"})


def _call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _is_id_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name) and node.func.id == "id")


def _container_key(node: ast.AST, scope: str) -> Optional[tuple]:
    """A matchable identity for a container expression.

    ``self.x`` chains match class-wide (attribute state outlives any one
    call); bare locals match only within their own function scope.
    """
    chain = attribute_chain(node)
    if chain is None:
        return None
    if len(chain) == 1:
        return ("local", scope, chain[0])
    return ("chain", chain)


class _SetTypes:
    """Infers which names / self-attributes hold sets in a module."""

    def __init__(self, index: ModuleIndex):
        self.index = index
        self.set_attrs: set[str] = set()   # self.<attr> assigned a set
        self._scan_attrs(index.tree)

    def _scan_attrs(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            value = None
            target = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target = node.target
                if self._is_set_annotation(node.annotation):
                    value = ast.Set(elts=[])  # treat as set-typed
                else:
                    value = node.value
            if target is None:
                continue
            if isinstance(target, ast.Attribute) and \
                    isinstance(target.value, ast.Name) and \
                    target.value.id == "self" and value is not None and \
                    self.is_set_expr(value, locals_env=frozenset()):
                self.set_attrs.add(target.attr)

    @staticmethod
    def _is_set_annotation(annotation: ast.AST) -> bool:
        if isinstance(annotation, ast.Name):
            return annotation.id in _SET_CONSTRUCTORS | {"Set", "FrozenSet"}
        if isinstance(annotation, ast.Subscript):
            return _SetTypes._is_set_annotation(annotation.value)
        if isinstance(annotation, ast.Constant) and \
                isinstance(annotation.value, str):
            text = annotation.value.split("[")[0].strip()
            return text in ("set", "frozenset", "Set", "FrozenSet")
        return False

    # ------------------------------------------------------------------
    def is_set_expr(self, node: ast.AST, locals_env: frozenset) -> bool:
        """Whether an expression is statically known to be a set."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if name in _SET_CONSTRUCTORS:
                return True
            # d.keys() alone is ordered; inside set algebra it loses
            # that order, which the BinOp arm below captures.
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
            return (self.is_set_expr(node.left, locals_env)
                    or self.is_set_expr(node.right, locals_env))
        if isinstance(node, ast.Name):
            return node.id in locals_env
        if isinstance(node, ast.Attribute) and \
                isinstance(node.value, ast.Name) and \
                node.value.id == "self":
            return node.attr in self.set_attrs
        return False

    def function_set_locals(self, fn: ast.AST) -> frozenset:
        """Names assigned a set expression anywhere in the function."""
        env: set[str] = set()
        if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for arg in (list(fn.args.posonlyargs) + list(fn.args.args)
                        + list(fn.args.kwonlyargs)):
                if arg.annotation is not None and \
                        self._is_set_annotation(arg.annotation):
                    env.add(arg.arg)
        # Two passes so `a = set(); b = a | other` resolves.
        for _ in range(2):
            for node in ast.walk(fn):
                if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                        and isinstance(node.targets[0], ast.Name) \
                        and self.is_set_expr(node.value, frozenset(env)):
                    env.add(node.targets[0].id)
        return frozenset(env)


class DeterminismRule(Rule):
    name = RULE
    description = ("sim-facing code must not read wall clock, entropy, "
                   "global RNG state, or hash-salted iteration order")

    def check_module(self, module: ParsedModule) -> Iterable[Finding]:
        index = ModuleIndex(module.path, module.tree)
        findings: list[Finding] = []
        set_types = _SetTypes(index)
        findings.extend(self._check_clock_and_rng(module, index))
        findings.extend(self._check_set_iteration(module, index, set_types))
        findings.extend(self._check_id_keys(module, index))
        return findings

    # ------------------------------------------------------------------
    # Wall clock, entropy, module-level random
    # ------------------------------------------------------------------
    def _check_clock_and_rng(self, module: ParsedModule,
                             index: ModuleIndex) -> Iterable[Finding]:
        for qualname, node in self._calls_with_scope(index):
            func = node.func
            # datetime.now() / datetime.datetime.now() are class-method
            # shapes the plain import resolver cannot see through.
            if isinstance(func, ast.Attribute) and \
                    func.attr in _DATETIME_NOW and \
                    self._is_datetime_receiver(func, index):
                yield Finding(
                    RULE, module.path, node.lineno,
                    f"datetime {func.attr}() reads the host wall clock — "
                    f"serial and pooled campaign runs would diverge",
                    symbol=qualname,
                    suggestion="derive timestamps from engine.now, or "
                               "stamp results outside the simulation")
                continue
            resolved = self._resolve_call_target(func, index)
            if resolved is None:
                continue
            source_module, attr = resolved
            replacement = _WALLCLOCK_CALLS.get((source_module, attr))
            if replacement is not None:
                yield Finding(
                    RULE, module.path, node.lineno,
                    f"{source_module}.{attr}() reads the host "
                    f"wall clock/entropy pool — serial and pooled "
                    f"campaign runs would diverge",
                    symbol=qualname,
                    suggestion=f"use {replacement} instead")
            if source_module == "random":
                if attr == "Random":
                    if not node.args and not node.keywords:
                        yield Finding(
                            RULE, module.path, node.lineno,
                            "random.Random() without a seed draws its "
                            "state from the OS — every process gets a "
                            "different sequence",
                            symbol=qualname,
                            suggestion="seed it: random.Random("
                                       "repro.sim.rng.derive_seed(...))")
                elif attr not in ("SystemRandom",):
                    yield Finding(
                        RULE, module.path, node.lineno,
                        f"random.{attr}() uses the process-global "
                        f"generator — pool workers each see a different "
                        f"sequence, and any new consumer shifts every "
                        f"later draw",
                        symbol=qualname,
                        suggestion="draw from a named stream: "
                                   "repro.sim.rng.RandomStreams(seed)"
                                   ".get(name)")

    @staticmethod
    def _calls_with_scope(index: ModuleIndex):
        """Every Call node paired with its enclosing function qualname."""
        seen: set[int] = set()
        for qualname in sorted(index.functions):
            info = index.functions[qualname]
            for node in walk_in_scope(info.node):
                if isinstance(node, ast.Call) and id(node) not in seen:
                    seen.add(id(node))
                    yield qualname, node
        for node in ast.walk(index.tree):
            if isinstance(node, ast.Call) and id(node) not in seen:
                seen.add(id(node))
                yield "", node

    @staticmethod
    def _resolve_call_target(func: ast.AST,
                             index: ModuleIndex) -> Optional[tuple]:
        """``(stdlib_module, attribute)`` for a call, via the imports."""
        if isinstance(func, ast.Attribute) and \
                isinstance(func.value, ast.Name):
            source = index.imports.get(func.value.id)
            if source is not None:
                return source, func.attr
            origin = index.from_imports.get(func.value.id)
            if origin is not None:
                # e.g. `from datetime import datetime` -> datetime.now()
                return origin[0], func.attr
            return None
        if isinstance(func, ast.Name):
            origin = index.from_imports.get(func.id)
            if origin is not None:
                return origin[0], origin[1]
        return None

    @staticmethod
    def _is_datetime_receiver(func: ast.AST, index: ModuleIndex) -> bool:
        """``datetime.now`` / ``datetime.datetime.now`` shapes."""
        if not isinstance(func, ast.Attribute):
            return False
        receiver = func.value
        if isinstance(receiver, ast.Name):
            origin = index.from_imports.get(receiver.id)
            return origin is not None and origin[0] == "datetime" and \
                origin[1] in _DATETIME_CLASSES
        if isinstance(receiver, ast.Attribute) and \
                isinstance(receiver.value, ast.Name):
            return index.imports.get(receiver.value.id) == "datetime" and \
                receiver.attr in _DATETIME_CLASSES
        return False

    # ------------------------------------------------------------------
    # Set iteration order
    # ------------------------------------------------------------------
    def _check_set_iteration(self, module: ParsedModule, index: ModuleIndex,
                             set_types: _SetTypes) -> Iterable[Finding]:
        scopes = [("", index.tree, frozenset())]
        for qualname in sorted(index.functions):
            info = index.functions[qualname]
            scopes.append((qualname, info.node,
                           set_types.function_set_locals(info.node)))
        seen: set[int] = set()
        for qualname, scope, env in scopes:
            nodes = (walk_in_scope(scope) if qualname
                     else ast.iter_child_nodes(scope))
            for node in self._iteration_sites(nodes, seen):
                iterated, how = node
                if set_types.is_set_expr(iterated, env):
                    yield Finding(
                        RULE, module.path, iterated.lineno,
                        f"iteration over a set ({how}) follows the salted, "
                        f"process-dependent hash order — pooled workers "
                        f"would visit elements differently",
                        symbol=qualname,
                        suggestion="wrap the iterable in sorted(...), or "
                                   "keep an insertion-ordered structure "
                                   "(list / dict keys)")

    @staticmethod
    def _iteration_sites(nodes, seen: set):
        for node in nodes:
            if id(node) in seen:
                continue
            if isinstance(node, ast.For):
                seen.add(id(node.iter))
                yield node.iter, "for loop"
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for comp in node.generators:
                    if id(comp.iter) not in seen:
                        seen.add(id(comp.iter))
                        yield comp.iter, "comprehension"
            elif isinstance(node, ast.Call):
                name = _call_name(node)
                if name in _ORDER_REALISERS and len(node.args) == 1:
                    if id(node.args[0]) not in seen:
                        seen.add(id(node.args[0]))
                        yield node.args[0], f"{name}()"

    # ------------------------------------------------------------------
    # id()-keyed containers that get iterated
    # ------------------------------------------------------------------
    def _check_id_keys(self, module: ParsedModule,
                       index: ModuleIndex) -> Iterable[Finding]:
        id_keyed: set[tuple] = set()
        iterations: list[tuple] = []  # (container_key, line, qualname)
        scopes = [("", index.tree)]
        scopes.extend((qualname, index.functions[qualname].node)
                      for qualname in sorted(index.functions))
        for qualname, scope in scopes:
            nodes = (walk_in_scope(scope) if qualname
                     else ast.iter_child_nodes(scope))
            for node in nodes:
                self._collect_id_marks(node, qualname, id_keyed)
                self._collect_iterations(node, qualname, iterations)
        if not id_keyed:
            return
        # A comprehension's iterable is also walked as a plain Call
        # node, so the same site can be collected twice.
        unique = sorted(set(iterations),
                        key=lambda entry: (entry[1], entry[2]))
        for container, line, qualname in unique:
            if container in id_keyed:
                name = (container[2] if container[0] == "local"
                        else chain_text(container[1]))
                yield Finding(
                    RULE, module.path, line,
                    f"container {name!r} is keyed by id() and iterated — "
                    f"id() values are memory addresses that change run to "
                    f"run, so even sorted() output is unstable",
                    symbol=qualname,
                    suggestion="key by a stable identifier (name, "
                               "sequence number) before iterating, or "
                               "never iterate the id()-keyed view")

    @staticmethod
    def _collect_id_marks(node: ast.AST, scope: str,
                          id_keyed: set) -> None:
        if isinstance(node, ast.Subscript) and _is_id_call(node.slice):
            key = _container_key(node.value, scope)
            if key is not None:
                id_keyed.add(key)
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and node.args and \
                    _is_id_call(node.args[0]) and \
                    func.attr in _ID_KEY_ADDERS | {"get", "pop",
                                                   "setdefault"}:
                key = _container_key(func.value, scope)
                if key is not None:
                    id_keyed.add(key)
        elif isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                isinstance(node.value, ast.Dict) and \
                any(key is not None and _is_id_call(key)
                    for key in node.value.keys):
            key = _container_key(node.targets[0], scope)
            if key is not None:
                id_keyed.add(key)

    @staticmethod
    def _collect_iterations(node: ast.AST, scope: str,
                            iterations: list) -> None:
        def container_of(expr: ast.AST) -> Optional[ast.AST]:
            # `x`, `x.keys()`, `x.values()`, `x.items()`, `sorted(x)`
            if isinstance(expr, ast.Call):
                func = expr.func
                if isinstance(func, ast.Attribute) and \
                        func.attr in ("keys", "values", "items"):
                    return func.value
                if _call_name(expr) in _ORDER_REALISERS | {"sorted"} and \
                        len(expr.args) >= 1:
                    return container_of(expr.args[0])
                return None
            return expr

        candidates: list[ast.AST] = []
        if isinstance(node, ast.For):
            candidates.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            candidates.extend(comp.iter for comp in node.generators)
        elif isinstance(node, ast.Call) and \
                _call_name(node) in _ORDER_REALISERS | {"sorted"} and \
                len(node.args) >= 1:
            candidates.append(node.args[0])
        for candidate in candidates:
            container = container_of(candidate)
            if container is None:
                continue
            key = _container_key(container, scope)
            if key is not None:
                iterations.append((key, candidate.lineno, scope))

"""Corruption-escape rule — tainted values reaching restart-surviving
state.

The paper's most serious failure class is not the crash but the
*corruption that outlives the restart*: a value derived from an
injectable parameter (every argument of the 551 injectable exports is
a fault site) is written to disk, logged to the NT event log, or
stored into machine-rooted / module-global structures — state a
process restart does **not** clear.  Middleware can restart the server
forever; the poisoned checkpoint greets every incarnation.

Taint sources (per function, then closed over call edges):

- the bound result of any simulated API call that takes at least one
  argument — with a fault injected into any parameter, the result is
  untrustworthy;
- out-parameters of read-style calls (``ReadFile``'s buffer and
  byte-count) — the classic corrupted-buffer entry point;
- the result of a call to a function that *returns* tainted data
  (computed to fixpoint across the call graph, so a helper that reads
  a file three modules down still taints its callers).

Sinks come from the call-graph summaries: ``WriteFile``-family data
parameters, ``eventlog.write`` arguments, and assignments into
machine-rooted or module-global containers.  A sink reached through a
call chain is found too: :meth:`CallGraph.sink_params` marks which
*parameters* of which functions flow into sinks, so passing a tainted
value into such a parameter is reported at the call site — the caller
is where the taint and the escape meet.

Sanitisation is the paper's own defence: *examine the value first*.  A
name that was tested (compared, branched on) before the sink line is
considered validated and stays silent.  Validation is per-name, not
per-field — checking ``if conf is None:`` blesses ``conf``; the rule
does not track corruption of individual dictionary entries.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .callgraph import CallGraph, FunctionSummary, callgraph_for
from .core import Finding, ParsedModule, Rule

RULE = "corruption-escape"

# Read-style calls whose listed argument positions are *out* parameters:
# after the call, the names passed there hold externally supplied data.
OUT_PARAM_TAINT = {
    ("k32", "ReadFile"): (1, 3),
    ("k32", "ReadFileEx"): (1,),
    ("libc", "read"): (1,),
}

_SINK_KIND_LABEL = {
    "api-write": "the simulated filesystem",
    "eventlog": "the NT event log",
    "persistent-store": "restart-surviving state",
}


def _module_path(graph: CallGraph, module_name: str) -> str:
    index = graph.project.modules.get(module_name)
    return index.path if index is not None else module_name


def _local_taint(summary: FunctionSummary,
                 tainted_returns: dict) -> dict:
    """name -> origin description for every tainted local, closed over
    the function's assignment skeleton."""
    taint: dict[str, str] = {}
    for call in summary.api_calls:
        if call.arg_names:  # at least one injectable parameter
            for name in call.bound:
                taint.setdefault(
                    name, f"the result of {call.api}.{call.name}")
        out_positions = OUT_PARAM_TAINT.get((call.api, call.name))
        if out_positions:
            for position in out_positions:
                if position < len(call.arg_names):
                    for name in call.arg_names[position]:
                        taint.setdefault(
                            name, f"an out-parameter of "
                                  f"{call.api}.{call.name}")
    for site in summary.calls:
        if site.via_reference or site.callee not in tainted_returns:
            continue
        for name in site.bound:
            taint.setdefault(
                name, f"{site.callee[1]}(), which returns "
                      f"{tainted_returns[site.callee]}")
    if not taint:
        return taint
    # Close over assignments (two passes cover forward + simple loop
    # flows, mirroring _local_flow_closure).
    for _ in range(2):
        for target, rhs_names, _line in summary.assignments:
            if target in taint:
                continue
            for rhs in rhs_names:
                if rhs in taint:
                    taint[target] = taint[rhs]
                    break
    return taint


def _tainted_returns(graph: CallGraph) -> dict:
    """FuncKey -> origin description for functions returning tainted
    data, to fixpoint."""
    table: dict = {}
    changed = True
    while changed:
        changed = False
        for key in sorted(graph.summaries):
            if key in table:
                continue
            summary = graph.summaries[key]
            taint = _local_taint(summary, table)
            if not taint:
                continue
            for info in summary.returns:
                hit = sorted(info.names & set(taint))
                if hit:
                    table[key] = taint[hit[0]]
                    changed = True
                    break
    return table


def _sanitised(summary: FunctionSummary, name: str, line: int) -> bool:
    checked = summary.checked_names.get(name)
    return checked is not None and checked < line


class CorruptionEscapeRule(Rule):
    name = RULE
    description = ("values tainted by injectable parameters must be "
                   "validated before reaching restart-surviving state")

    def check_project(self,
                      modules: Sequence[ParsedModule]) -> Iterable[Finding]:
        graph = callgraph_for(modules)
        tainted_returns = _tainted_returns(graph)
        sink_params = graph.sink_params()
        findings: list[Finding] = []
        seen: set = set()
        for key in sorted(graph.summaries):
            summary = graph.summaries[key]
            taint = _local_taint(summary, tainted_returns)
            if not taint:
                continue
            path = _module_path(graph, summary.module_name)
            for finding in self._direct_sinks(summary, path, taint):
                if finding.key not in seen:
                    seen.add(finding.key)
                    findings.append(finding)
            for finding in self._call_sinks(graph, summary, path, taint,
                                            sink_params):
                if finding.key not in seen:
                    seen.add(finding.key)
                    findings.append(finding)
        return findings

    # ------------------------------------------------------------------
    def _direct_sinks(self, summary: FunctionSummary, path: str,
                      taint: dict) -> Iterable[Finding]:
        for sink in summary.sinks:
            origin = taint.get(sink.name)
            if origin is None or _sanitised(summary, sink.name, sink.line):
                continue
            label = _SINK_KIND_LABEL.get(sink.kind, sink.kind)
            yield Finding(
                RULE, path, sink.line,
                f"'{sink.name}' derives from {origin} and flows into "
                f"{label} ({sink.detail}) without validation — an "
                "injected fault here survives a process restart",
                symbol=summary.qualname,
                suggestion=f"validate '{sink.name}' (or the producing "
                           "call's status) before it escapes")

    def _call_sinks(self, graph: CallGraph, summary: FunctionSummary,
                    path: str, taint: dict,
                    sink_params: dict) -> Iterable[Finding]:
        for site in summary.calls:
            if site.via_reference:
                continue
            callee_sinks = sink_params.get(site.callee)
            if not callee_sinks:
                continue
            callee = graph.summaries.get(site.callee)
            if callee is None:
                continue
            shift = 1 if callee.class_name is not None and \
                callee.param_names[:1] in (("self",), ("cls",)) else 0
            for position, names in enumerate(site.arg_names):
                if position + shift not in callee_sinks:
                    continue
                for name in sorted(set(names)):
                    origin = taint.get(name)
                    if origin is None or \
                            _sanitised(summary, name, site.line):
                        continue
                    yield Finding(
                        RULE, path, site.line,
                        f"'{name}' derives from {origin} and is passed "
                        f"to {site.callee[1]}(), which writes that "
                        "parameter into restart-surviving state — an "
                        "injected fault here survives a process restart",
                        symbol=summary.qualname,
                        suggestion=f"validate '{name}' before handing "
                                   f"it to {site.callee[1]}()")

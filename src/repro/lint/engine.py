"""The whole-program analysis engine under the two-tier linter.

The five original passes are per-file pattern matchers: each looks at
one AST and needs no memory of the rest of the tree.  The race and
determinism families (:mod:`repro.lint.races`,
:mod:`repro.lint.determinism`) need more — *where a generator can be
suspended*, *which state is shared between interleaved coroutines*, and
*what a name resolves to* — so this module builds the three indexes
they (and any adopting rule) share:

- :class:`ModuleIndex` — one module's symbol table: top-level
  bindings, the import map, every function with its dotted qualname and
  owning class, and whether a delegation target can actually suspend
  (:meth:`ModuleIndex.can_suspend` follows ``yield from`` chains).
- :class:`GeneratorCFG` — one generator function sliced into
  *segments*: maximal regions that execute atomically between two
  suspension points (``yield`` / ``yield from``).  Each shared-state
  access is recorded with the segment it falls in, so "does this value
  survive a suspension" becomes integer comparison.
- :class:`ProjectIndex` — the module indexes for a whole tree, keyed
  by dotted module name, with a canonical :meth:`ProjectIndex.summary`
  for stability checks.

The CFG is deliberately an *abstraction*, not an interpreter: control
flow is over-approximated (both branches of an ``if`` are walked, loop
bodies are walked once, exception edges are ignored).  That errs toward
reporting — exactly right for the atomicity property, where a hazard on
any path is a hazard.

Everything here is derived from the AST alone; building an index twice
over the same tree yields identical structures, which the determinism
sanitizer's own test suite asserts (the analyzer must hold itself to
the invariant it enforces).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Sequence

# Receiver roots considered *shared* between interleaved coroutines: the
# instance a server/middleware method runs on, and everything reachable
# from the per-process context / machine singletons.
SHARED_ROOTS = frozenset({"self", "cls", "ctx", "machine"})

# Method names that mutate their receiver in place.
MUTATORS = frozenset({
    "append", "add", "remove", "discard", "pop", "popitem", "clear",
    "extend", "insert", "update", "setdefault", "sort", "reverse",
})

Chain = tuple  # tuple[str, ...]: ("self", "count") or ("COUNTER",)


def chain_text(chain: Chain) -> str:
    return ".".join(chain)


def attribute_chain(node: ast.AST) -> Optional[Chain]:
    """``self.a.b`` -> ("self", "a", "b"); None for non-chain shapes."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return tuple(reversed(parts))


class SuspensionPoint:
    """One place a generator hands control back to the event engine."""

    __slots__ = ("line", "kind", "node")

    def __init__(self, line: int, kind: str, node: ast.AST):
        self.line = line
        self.kind = kind  # "yield" | "yield-from"
        self.node = node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SuspensionPoint {self.kind}@{self.line}>"


class Access:
    """One read/write/mutation of a shared location.

    ``segment`` is the index of the atomic region the access falls in;
    two accesses with equal segments cannot be separated by a
    suspension.  ``in_test`` marks reads that occur inside an ``if`` /
    ``while`` condition (the *check* half of check-then-act).  Writes
    produced by ``x = expr`` carry the locals and shared chains the
    right-hand side read, so dataflow questions ("does this write use a
    value captured before the yield?") stay cheap.
    """

    __slots__ = ("chain", "kind", "line", "segment", "in_test",
                 "rhs_locals", "rhs_chains", "cross_aug")

    def __init__(self, chain: Chain, kind: str, line: int, segment: int,
                 in_test: bool = False,
                 rhs_locals: frozenset = frozenset(),
                 rhs_chains: frozenset = frozenset(),
                 cross_aug: bool = False):
        self.chain = chain
        self.kind = kind  # "read" | "write" | "mutate"
        self.line = line
        self.segment = segment
        self.in_test = in_test
        self.rhs_locals = rhs_locals
        self.rhs_chains = rhs_chains
        self.cross_aug = cross_aug

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Access {self.kind} {chain_text(self.chain)} "
                f"seg={self.segment} line={self.line}>")


class Capture:
    """A local name bound (in part) from a shared location's value."""

    __slots__ = ("local", "chain", "line", "segment")

    def __init__(self, local: str, chain: Chain, line: int, segment: int):
        self.local = local
        self.chain = chain
        self.line = line
        self.segment = segment


class Branch:
    """An ``if``/``while`` whose test read shared state.

    ``access_range`` is the slice of the CFG's access list covering the
    branch body, so a rule can ask "was the checked location written
    inside the branch, after a suspension?" without re-walking the AST.
    """

    __slots__ = ("kind", "line", "test_chains", "test_segment",
                 "access_range", "suspends")

    def __init__(self, kind: str, line: int, test_chains: frozenset,
                 test_segment: int, access_range: tuple,
                 suspends: bool):
        self.kind = kind  # "if" | "while"
        self.line = line
        self.test_chains = test_chains
        self.test_segment = test_segment
        self.access_range = access_range
        self.suspends = suspends


class GeneratorCFG:
    """One generator function, sliced at its suspension points."""

    __slots__ = ("qualname", "node", "suspensions", "accesses",
                 "captures", "branches", "segment_count")

    def __init__(self, qualname: str, node: ast.AST):
        self.qualname = qualname
        self.node = node
        self.suspensions: list[SuspensionPoint] = []
        self.accesses: list[Access] = []
        self.captures: list[Capture] = []
        self.branches: list[Branch] = []
        self.segment_count = 1

    def segment_accesses(self) -> dict:
        """``segment -> {"reads": set, "writes": set}`` of chain texts."""
        table: dict[int, dict[str, set]] = {}
        for access in self.accesses:
            bucket = table.setdefault(access.segment,
                                      {"reads": set(), "writes": set()})
            side = "reads" if access.kind == "read" else "writes"
            bucket[side].add(chain_text(access.chain))
        return table

    def summary(self) -> dict:
        """Canonical, comparison-friendly description of the CFG."""
        return {
            "segments": self.segment_count,
            "suspensions": [(s.line, s.kind) for s in self.suspensions],
            "accesses": [(a.segment, a.kind, chain_text(a.chain), a.line)
                         for a in self.accesses],
        }


_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


class _CfgBuilder:
    """Walks a function body in approximate execution order.

    The segment counter bumps at every suspension point encountered;
    expression subtrees are visited in evaluation order (operands before
    the ``yield`` they feed, assigned values before their targets), so
    an access's segment matches where it really executes relative to
    each suspension.
    """

    def __init__(self, cfg: GeneratorCFG, module_globals: frozenset,
                 fn: ast.AST):
        self.cfg = cfg
        self.module_globals = module_globals
        self.locals = self._function_locals(fn)
        self.global_decls = {
            name for node in ast.walk(fn) if isinstance(node, ast.Global)
            for name in node.names}
        self.segment = 0
        self.in_test = False

    # ------------------------------------------------------------------
    @staticmethod
    def _function_locals(fn: ast.AST) -> set:
        names = {arg.arg for arg in
                 list(fn.args.posonlyargs) + list(fn.args.args)
                 + list(fn.args.kwonlyargs)}
        for extra in (fn.args.vararg, fn.args.kwarg):
            if extra is not None:
                names.add(extra.arg)
        globals_declared = {
            name for node in ast.walk(fn) if isinstance(node, ast.Global)
            for name in node.names}
        for node in ast.walk(fn):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign,
                                 ast.For, ast.NamedExpr)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Name):
                            names.add(sub.id)
        return names - globals_declared

    # ------------------------------------------------------------------
    # Shared-location classification
    # ------------------------------------------------------------------
    def _shared_chain(self, node: ast.AST) -> Optional[Chain]:
        if isinstance(node, ast.Attribute):
            chain = attribute_chain(node)
            if chain is not None and chain[0] in SHARED_ROOTS:
                return chain
            return None
        if isinstance(node, ast.Name):
            name = node.id
            if name in self.global_decls or (
                    name in self.module_globals and name not in self.locals):
                return (name,)
        return None

    def _record(self, chain: Chain, kind: str, line: int, **kw) -> None:
        self.cfg.accesses.append(Access(chain, kind, line, self.segment,
                                        in_test=self.in_test, **kw))

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def visit_body(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self.visit_stmt(stmt)

    def visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Expr):
            self.visit_expr(stmt.value)
        elif isinstance(stmt, ast.Assign):
            self._visit_assign(stmt.value, stmt.targets, stmt.lineno)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._visit_assign(stmt.value, [stmt.target], stmt.lineno)
        elif isinstance(stmt, ast.AugAssign):
            self._visit_aug_assign(stmt)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._visit_branch(stmt)
        elif isinstance(stmt, ast.For):
            self.visit_expr(stmt.iter)
            self._visit_target(stmt.target, stmt.lineno,
                               rhs_locals=frozenset(),
                               rhs_chains=frozenset())
            self.visit_body(stmt.body)
            self.visit_body(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            self.visit_body(stmt.body)
            for handler in stmt.handlers:
                self.visit_body(handler.body)
            self.visit_body(stmt.orelse)
            self.visit_body(stmt.finalbody)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self.visit_expr(item.context_expr)
                if item.optional_vars is not None:
                    self._visit_target(item.optional_vars, stmt.lineno,
                                       rhs_locals=frozenset(),
                                       rhs_chains=frozenset())
            self.visit_body(stmt.body)
        elif isinstance(stmt, (ast.Return, ast.Raise)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.visit_expr(child)
        elif isinstance(stmt, ast.Assert):
            self.visit_expr(stmt.test)
            if stmt.msg is not None:
                self.visit_expr(stmt.msg)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                chain = self._shared_chain(target)
                if chain is not None:
                    self._record(chain, "write", stmt.lineno)
        elif isinstance(stmt, _FUNCTION_NODES + (ast.ClassDef,)):
            pass  # nested scope: analysed as its own CFG
        # Pass/Break/Continue/Import/Global/Nonlocal: nothing to record.

    # ------------------------------------------------------------------
    def _rhs_reads(self, value: ast.expr) -> tuple:
        """Locals and shared chains read by an expression."""
        locals_read, chains_read = set(), set()
        for node in ast.walk(value):
            if isinstance(node, ast.Name) and node.id in self.locals:
                locals_read.add(node.id)
            chain = self._shared_chain(node)
            if chain is not None:
                chains_read.add(chain)
        return frozenset(locals_read), frozenset(chains_read)

    def _visit_assign(self, value: ast.expr, targets, lineno: int) -> None:
        rhs_locals, rhs_chains = self._rhs_reads(value)
        value_segment = self.segment
        self.visit_expr(value)
        for target in targets:
            self._visit_target(target, lineno, rhs_locals=rhs_locals,
                               rhs_chains=rhs_chains)
        # Locals bound (even via tuple unpacking) from a shared read are
        # captures: the value may be stale after the next suspension.
        if rhs_chains:
            for target in targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name) and sub.id in self.locals:
                        for chain in rhs_chains:
                            self.cfg.captures.append(Capture(
                                sub.id, chain, lineno, value_segment))

    def _visit_aug_assign(self, stmt: ast.AugAssign) -> None:
        chain = self._shared_chain(stmt.target)
        read_segment = self.segment
        if chain is not None:
            self._record(chain, "read", stmt.lineno)
        rhs_locals, rhs_chains = self._rhs_reads(stmt.value)
        self.visit_expr(stmt.value)
        if chain is not None:
            self._record(chain, "write", stmt.lineno,
                         rhs_locals=rhs_locals,
                         rhs_chains=rhs_chains | {chain},
                         cross_aug=self.segment != read_segment)
        elif isinstance(stmt.target, ast.Subscript):
            base = self._shared_chain(stmt.target.value)
            if base is not None:
                self._record(base, "mutate", stmt.lineno)

    def _visit_target(self, target: ast.AST, lineno: int, *,
                      rhs_locals: frozenset, rhs_chains: frozenset) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._visit_target(element, lineno, rhs_locals=rhs_locals,
                                   rhs_chains=rhs_chains)
        elif isinstance(target, ast.Starred):
            self._visit_target(target.value, lineno, rhs_locals=rhs_locals,
                               rhs_chains=rhs_chains)
        elif isinstance(target, ast.Subscript):
            base = self._shared_chain(target.value)
            if base is not None:
                self._record(base, "mutate", lineno, rhs_locals=rhs_locals,
                             rhs_chains=rhs_chains)
            self.visit_expr(target.slice)
        else:
            chain = self._shared_chain(target)
            if chain is not None:
                self._record(chain, "write", lineno, rhs_locals=rhs_locals,
                             rhs_chains=rhs_chains)

    # ------------------------------------------------------------------
    def _visit_branch(self, stmt) -> None:
        kind = "if" if isinstance(stmt, ast.If) else "while"
        test_segment = self.segment
        before = len(self.cfg.accesses)
        self.in_test = True
        self.visit_expr(stmt.test)
        self.in_test = False
        test_chains = frozenset(
            access.chain for access in self.cfg.accesses[before:]
            if access.kind == "read")
        body_start = len(self.cfg.accesses)
        segment_before_body = self.segment
        self.visit_body(stmt.body)
        self.visit_body(stmt.orelse)
        if test_chains:
            self.cfg.branches.append(Branch(
                kind, stmt.lineno, test_chains, test_segment,
                (body_start, len(self.cfg.accesses)),
                suspends=self.segment != segment_before_body))

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def visit_expr(self, node: ast.expr) -> None:
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if node.value is not None:
                self.visit_expr(node.value)
            kind = "yield" if isinstance(node, ast.Yield) else "yield-from"
            self.cfg.suspensions.append(
                SuspensionPoint(node.lineno, kind, node))
            self.segment += 1
            self.cfg.segment_count = self.segment + 1
            return
        if isinstance(node, ast.Attribute):
            chain = self._shared_chain(node)
            if chain is not None:
                self._record(chain, "read", node.lineno)
                return
            self.visit_expr(node.value)
            return
        if isinstance(node, ast.Subscript):
            base = self._shared_chain(node.value)
            if base is not None:
                self._record(base, "read", node.lineno)
            else:
                self.visit_expr(node.value)
            self.visit_expr(node.slice)
            return
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in MUTATORS:
                base = self._shared_chain(func.value)
                if base is not None:
                    self._record(base, "mutate", node.lineno)
                else:
                    self.visit_expr(func.value)
            else:
                self.visit_expr(func)
            for arg in node.args:
                self.visit_expr(arg if not isinstance(arg, ast.Starred)
                                else arg.value)
            for keyword in node.keywords:
                self.visit_expr(keyword.value)
            return
        if isinstance(node, ast.Name):
            chain = self._shared_chain(node)
            if chain is not None:
                self._record(chain, "read", node.lineno)
            return
        if isinstance(node, ast.Lambda):
            return  # separate scope
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            # Only the first iterable evaluates in this scope.
            if node.generators:
                self.visit_expr(node.generators[0].iter)
            return
        if isinstance(node, ast.NamedExpr):
            self.visit_expr(node.value)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.visit_expr(child)


def build_cfg(qualname: str, fn: ast.AST,
              module_globals: frozenset) -> GeneratorCFG:
    """Build the segment CFG for one (generator) function."""
    cfg = GeneratorCFG(qualname, fn)
    builder = _CfgBuilder(cfg, module_globals, fn)
    builder.visit_body(fn.body)
    return cfg


# ----------------------------------------------------------------------
# Module-level symbol table
# ----------------------------------------------------------------------
class FunctionInfo:
    """One function definition with its resolution context."""

    __slots__ = ("qualname", "node", "class_name", "is_generator")

    def __init__(self, qualname: str, node: ast.AST,
                 class_name: Optional[str], is_generator: bool):
        self.qualname = qualname
        self.node = node
        self.class_name = class_name
        self.is_generator = is_generator


def _own_scope_nodes(fn: ast.AST) -> Iterator[ast.AST]:
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(child, _FUNCTION_NODES + (ast.Lambda, ast.ClassDef)):
            stack.extend(ast.iter_child_nodes(child))


class ModuleIndex:
    """Symbol table and generator CFGs for one parsed module."""

    def __init__(self, path: str, tree: ast.Module):
        self.path = path
        self.tree = tree
        self.module_globals = frozenset(self._top_level_names(tree))
        self.imports: dict[str, str] = {}          # alias -> module
        self.from_imports: dict[str, tuple] = {}   # alias -> (module, name)
        self.functions: dict[str, FunctionInfo] = {}
        self._methods: dict[tuple, FunctionInfo] = {}
        self._cfgs: dict[str, GeneratorCFG] = {}
        self._suspend_memo: dict[str, Optional[bool]] = {}
        self._collect_imports(tree)
        self._collect_functions(tree, prefix="", class_name=None)

    # ------------------------------------------------------------------
    @staticmethod
    def _top_level_names(tree: ast.Module) -> Iterator[str]:
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Name):
                            yield sub.id
            elif isinstance(stmt, ast.AnnAssign) and \
                    isinstance(stmt.target, ast.Name):
                yield stmt.target.id

    def _collect_imports(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.imports[alias.asname or alias.name.split(".")[0]] \
                        = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and not node.level:
                for alias in node.names:
                    self.from_imports[alias.asname or alias.name] = \
                        (node.module, alias.name)

    def _collect_functions(self, node: ast.AST, prefix: str,
                           class_name: Optional[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _FUNCTION_NODES):
                qualname = f"{prefix}{child.name}"
                is_gen = not isinstance(child, ast.AsyncFunctionDef) and any(
                    isinstance(sub, (ast.Yield, ast.YieldFrom))
                    for sub in _own_scope_nodes(child))
                info = FunctionInfo(qualname, child, class_name, is_gen)
                self.functions[qualname] = info
                if class_name is not None:
                    self._methods.setdefault((class_name, child.name), info)
                self._collect_functions(child, f"{qualname}.", class_name)
            elif isinstance(child, ast.ClassDef):
                self._collect_functions(child, f"{prefix}{child.name}.",
                                        child.name)
            else:
                self._collect_functions(child, prefix, class_name)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def function(self, name: str) -> Optional[FunctionInfo]:
        """A module-level function by bare name."""
        info = self.functions.get(name)
        if info is not None and info.class_name is None:
            return info
        return None

    def method(self, class_name: Optional[str],
               name: str) -> Optional[FunctionInfo]:
        if class_name is None:
            return None
        return self._methods.get((class_name, name))

    def resolve_call(self, call: ast.Call,
                     class_name: Optional[str]) -> Optional[FunctionInfo]:
        """The in-module target of a call, or None when unresolvable."""
        func = call.func
        if isinstance(func, ast.Name):
            return self.function(func.id)
        if isinstance(func, ast.Attribute) and \
                isinstance(func.value, ast.Name) and \
                func.value.id in ("self", "cls"):
            return self.method(class_name, func.attr)
        return None

    # ------------------------------------------------------------------
    # CFGs
    # ------------------------------------------------------------------
    def cfg(self, qualname: str) -> Optional[GeneratorCFG]:
        """The segment CFG of a generator function (built on demand)."""
        info = self.functions.get(qualname)
        if info is None or not info.is_generator:
            return None
        cached = self._cfgs.get(qualname)
        if cached is None:
            cached = build_cfg(qualname, info.node, self.module_globals)
            self._cfgs[qualname] = cached
        return cached

    def generators(self) -> Iterator[FunctionInfo]:
        for qualname in sorted(self.functions):
            info = self.functions[qualname]
            if info.is_generator:
                yield info

    # ------------------------------------------------------------------
    # Suspension reachability (for yield-from delegation)
    # ------------------------------------------------------------------
    def can_suspend(self, info: FunctionInfo) -> bool:
        """Whether a generator can ever hand control to the engine.

        A generator that only ever delegates to empty iterables (or to
        other such generators) runs start-to-finish without suspending:
        ``yield from`` over it is *not* progress for the event loop.
        Cycles with no bare ``yield`` anywhere cannot suspend either.
        """
        return bool(self._can_suspend(info.qualname))

    def _can_suspend(self, qualname: str) -> Optional[bool]:
        memo = self._suspend_memo
        if qualname in memo:
            return memo[qualname]  # None marks "in progress" (a cycle)
        memo[qualname] = None
        info = self.functions[qualname]
        result = False
        for node in _own_scope_nodes(info.node):
            if isinstance(node, ast.Yield):
                result = True
                break
            if isinstance(node, ast.YieldFrom) and \
                    self.yield_from_suspends(node, info.class_name):
                result = True
                break
        memo[qualname] = result
        return result

    def yield_from_suspends(self, node: ast.YieldFrom,
                            class_name: Optional[str]) -> bool:
        """Whether one ``yield from`` can actually suspend the caller."""
        operand = node.value
        if isinstance(operand, (ast.Tuple, ast.List, ast.Set)):
            return bool(operand.elts)  # empty literal: nothing yielded
        if isinstance(operand, ast.Call):
            target = self.resolve_call(operand, class_name)
            if target is None:
                return True  # out-of-module target: assume it suspends
            if not target.is_generator:
                return True  # plain call returning an iterable: unknown
            verdict = self._can_suspend(target.qualname)
            return bool(verdict)  # in-progress cycle counts as "cannot"
        return True  # a name/attribute: contents unknowable


# ----------------------------------------------------------------------
# Project-wide index
# ----------------------------------------------------------------------
def module_name_for_path(path: str) -> str:
    """``src/repro/sim/engine.py`` -> ``repro.sim.engine``."""
    parts = path.replace("\\", "/").split("/")
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    return ".".join(parts) if parts else path


class ProjectIndex:
    """Module indexes for a whole tree, keyed by dotted module name."""

    def __init__(self):
        self.modules: dict[str, ModuleIndex] = {}

    @classmethod
    def build(cls, modules: Sequence) -> "ProjectIndex":
        """Index every :class:`~repro.lint.core.ParsedModule` given."""
        index = cls()
        for module in modules:
            name = module_name_for_path(module.path)
            index.modules[name] = ModuleIndex(module.path, module.tree)
        return index

    def module_for_path(self, path: str) -> Optional[ModuleIndex]:
        for module in self.modules.values():
            if module.path == path:
                return module
        return None

    def summary(self) -> dict:
        """Canonical nested-dict form, for stability comparisons."""
        out: dict = {}
        for name in sorted(self.modules):
            module = self.modules[name]
            generators = {}
            for info in module.generators():
                cfg = module.cfg(info.qualname)
                generators[info.qualname] = cfg.summary()
            out[name] = {
                "path": module.path,
                "globals": sorted(module.module_globals),
                "functions": sorted(module.functions),
                "generators": generators,
            }
        return out

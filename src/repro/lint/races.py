"""Yield-point atomicity checker — races across cooperative suspensions.

The simulated substrate has no preemption: a generator's code between
two ``yield`` points executes atomically, and *everything* else — other
server processes, middleware monitors, SCM callbacks — runs only while
it is suspended.  That is the property the whole experimental method
leans on (a run is a controlled experiment precisely because
interleaving is confined to suspension points), and it cuts both ways:
any state shared between coroutines is fair game for mutation at every
``yield``, so a value carried *across* a suspension is stale by
construction.

This rule finds the two shapes that break under that model:

**Lost update** — a shared location is read into a local before a
suspension and written back from that local after it::

    count = self.request_count
    yield from k32.Sleep(100)          # others run here
    self.request_count = count + 1     # clobbers their updates

**Check-then-act** — a branch condition reads shared state, the body
suspends, and only then acts on the (possibly stale) check::

    if self.worker is None:
        handle = yield from k32.CreateEventA(...)
        self.worker = handle           # a second spawner got here first

Shared locations are instance attributes (``self.*``), state reachable
from the per-process context (``ctx.*`` / ``machine.*``), and module
globals.  Re-reading the location in the same post-suspension segment
as the write counts as re-validation and silences the finding — the
cooperative model makes everything inside one segment atomic, so a
``self.x = self.x + 1`` after the yield is an honest read-modify-write.

Both findings carry fix-it suggestions; the engine's segment CFG
(:mod:`repro.lint.engine`) does the heavy lifting.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from .core import Finding, ParsedModule, Rule
from .engine import Access, GeneratorCFG, ModuleIndex, chain_text

RULE = "yield-race"


def _revalidated(cfg: GeneratorCFG, write: Access) -> bool:
    """A read of the written chain in the write's own segment means the
    code re-fetched the value after the last suspension."""
    return any(access.kind == "read" and access.chain == write.chain
               and access.segment == write.segment
               and not access.in_test
               for access in cfg.accesses)


def _rechecked(cfg: GeneratorCFG, write: Access) -> bool:
    """A *test* read in the write's segment re-checks the condition."""
    return any(access.kind == "read" and access.chain == write.chain
               and access.segment == write.segment and access.in_test
               for access in cfg.accesses)


class YieldRaceRule(Rule):
    name = RULE
    description = ("shared state read before a yield point must not be "
                   "acted on after it without re-validation")

    def check_module(self, module: ParsedModule) -> Iterable[Finding]:
        index = ModuleIndex(module.path, module.tree)
        findings: list[Finding] = []
        for info in index.generators():
            cfg = index.cfg(info.qualname)
            findings.extend(self._check_cfg(module, info.qualname, cfg))
        return findings

    # ------------------------------------------------------------------
    def _check_cfg(self, module: ParsedModule, qualname: str,
                   cfg: GeneratorCFG) -> Iterator[Finding]:
        if not cfg.suspensions:
            return
        reported: set[tuple] = set()

        # --- check-then-act ------------------------------------------
        for branch in cfg.branches:
            if not branch.suspends:
                continue
            start, end = branch.access_range
            for access in cfg.accesses[start:end]:
                if access.kind not in ("write", "mutate"):
                    continue
                if access.chain not in branch.test_chains:
                    continue
                if access.segment <= branch.test_segment:
                    continue
                if _rechecked(cfg, access):
                    continue
                key = (access.line, access.chain)
                if key in reported:
                    continue
                reported.add(key)
                location = chain_text(access.chain)
                verb = ("written" if access.kind == "write"
                        else "mutated")
                yield Finding(
                    RULE, module.path, access.line,
                    f"{location} is checked in the enclosing {branch.kind} "
                    f"test but only {verb} after a yield point — other "
                    f"processes run at the suspension, so the check can be "
                    f"stale by the time this statement acts on it "
                    f"(check-then-act)",
                    symbol=qualname,
                    suggestion=f"re-validate {location} after the last "
                               f"yield before acting, or restructure so "
                               f"check and act share a segment")

        # --- lost update via a captured local ------------------------
        for access in cfg.accesses:
            if access.kind != "write":
                continue
            key = (access.line, access.chain)
            if key in reported:
                continue
            hazard = access.cross_aug
            if not hazard:
                for capture in cfg.captures:
                    if capture.chain != access.chain:
                        continue
                    if capture.local not in access.rhs_locals:
                        continue
                    if capture.segment < access.segment:
                        hazard = True
                # A fresher capture in the write's own segment means the
                # value was re-fetched after the suspension.
                if hazard and any(
                        capture.chain == access.chain
                        and capture.segment == access.segment
                        for capture in cfg.captures):
                    hazard = False
            if not hazard or _revalidated(cfg, access):
                continue
            reported.add(key)
            location = chain_text(access.chain)
            detail = ("the augmented assignment itself suspends between "
                      "its read and its write"
                      if access.cross_aug else
                      "the value crosses the suspension in a local")
            yield Finding(
                RULE, module.path, access.line,
                f"{location} is read before a yield point and written "
                f"back after it — {detail}; updates made by other "
                f"processes during the suspension are silently lost "
                f"(lost update)",
                symbol=qualname,
                suggestion=f"re-read {location} after resuming (an "
                           f"in-segment read-modify-write is atomic), or "
                           f"move the update before the yield")

"""The static↔dynamic census oracle, and the dead-fault-space rule.

The campaign's activation shortcut rests on one prediction: a fault in
function *F* can only activate if the target role actually calls *F*.
PR 6's call graph makes that prediction *static* — from each
registered role's entry points, the reachable ``k32`` exports are the
activatable slice of the 681/130/551 fault space.  This module
reconciles that prediction against *dynamic* evidence:

- **live census** — fault-free profile runs of every registered
  workload under each middleware configuration (they cost milliseconds
  in simulated time), collecting the target role's called-function
  sets exactly as the campaign's wave-0 profiling run does;
- **store census** — previously checkpointed runs read back from
  JSONL run stores: each entry contributes its recorded
  ``called_functions`` set, plus the fault's own target function when
  the run reports activation.

The diff has two interesting directions:

- **unexplained activation** (dynamic − static): a function was
  observed called but the call graph cannot reach it — the analysis
  lost an edge (a resolution gap) or a registration.  On a healthy
  tree this set is empty, and CI keeps it that way.
- **dead fault space** (static-only, per fault list): a fault list
  entry targets a function *no* role can reach — the probe run is
  guaranteed wasted.  :class:`FaultReachabilityRule` reports these as
  ordinary findings on ``.lst`` files, so a stale fault list fails the
  lint gate like any other drift.

The asymmetry is deliberate: static reachability over-approximates
(both sides of every branch), so static − dynamic is *expected* to be
non-empty and is reported as coverage, not as findings.
"""

from __future__ import annotations

import json
from typing import Iterable, Optional, Sequence

from .callgraph import callgraph_for
from .core import FaultListFile, Finding, ParsedModule, Rule

RULE = "fault-reachability"

# Middleware configurations each workload profiles under, mirroring the
# paper's three-configuration grid.
_MIDDLEWARE_NAMES = ("none", "mscs", "watchd")


# ----------------------------------------------------------------------
# Static side
# ----------------------------------------------------------------------
def static_role_exports(modules: Sequence[ParsedModule]) -> dict:
    """role -> set of statically reachable ``k32`` export names."""
    graph = callgraph_for(modules)
    table: dict[str, set] = {}
    for role, roots in graph.roles().items():
        table[role] = {name for api, name in graph.reachable_api(roots)
                       if api == "k32"}
    return table


def activatable_faults(exports: Iterable[str]) -> int:
    """Parameter-fault tuples activatable through the given exports."""
    from ..core.faultlist import fault_space_census

    per_function = fault_space_census()["per_function"]
    return sum(per_function.get(name, 0) for name in exports)


# ----------------------------------------------------------------------
# Dynamic side
# ----------------------------------------------------------------------
def dynamic_census_live(workload_names: Optional[Sequence[str]] = None,
                        ) -> dict:
    """role -> called ``k32`` exports, from fresh profile runs.

    Runs every requested workload under all three middleware
    configurations with no fault armed — the same collection path as
    the campaign's profiling wave, so the census and the campaign can
    never disagree about what "called" means.
    """
    from ..core.runner import RunConfig, execute_run
    from ..core.workload import WORKLOADS, MiddlewareKind

    names = sorted(workload_names if workload_names is not None
                   else WORKLOADS)
    table: dict[str, set] = {}
    for name in names:
        workload = WORKLOADS[name]
        bucket = table.setdefault(workload.target_role, set())
        for middleware_name in _MIDDLEWARE_NAMES:
            result = execute_run(workload, MiddlewareKind(middleware_name),
                                 None, RunConfig())
            bucket.update(result.called_functions)
    return table


def dynamic_census_from_stores(paths: Sequence[str]) -> dict:
    """role -> observed exports, read back from JSONL run stores.

    Every injection-run entry contributes its ``called_functions``
    set; entries that report fault activation also contribute the
    fault's target function (belt and braces: an activated fault *was*
    reached, whatever the called set says).  Load-run entries carry no
    called set and are skipped.
    """
    from ..core.store import RunStore
    from ..core.workload import WORKLOADS

    table: dict[str, set] = {}
    for path in paths:
        with RunStore(path) as store:
            for _fingerprint, _key, result in store.results():
                workload = WORKLOADS.get(
                    getattr(result, "workload_name", None))
                if workload is None or \
                        not hasattr(result, "called_functions"):
                    continue
                bucket = table.setdefault(workload.target_role, set())
                bucket.update(result.called_functions)
                fault = getattr(result, "fault", None)
                if fault is not None and getattr(result, "activated",
                                                 False) \
                        and not hasattr(fault, "window"):
                    # Windowed faults (io/resource) activate through
                    # transport ops or synthetic resource axes, not
                    # through a kernel32 export the call graph could
                    # predict — contributing their .function here would
                    # fabricate unexplained activations.
                    bucket.add(fault.function)
    return table


# ----------------------------------------------------------------------
# The diff
# ----------------------------------------------------------------------
class RoleCensus:
    """One role's static prediction vs dynamic observation."""

    __slots__ = ("role", "static_exports", "dynamic_exports")

    def __init__(self, role: str, static_exports: set,
                 dynamic_exports: set):
        self.role = role
        self.static_exports = static_exports
        self.dynamic_exports = dynamic_exports

    @property
    def unexplained(self) -> list:
        """Observed calls the call graph cannot explain (must be [])."""
        return sorted(self.dynamic_exports - self.static_exports)

    @property
    def unobserved(self) -> list:
        """Predicted-reachable exports no profiled run touched —
        branch-dependent coverage, not an error."""
        return sorted(self.static_exports - self.dynamic_exports)

    def to_json(self) -> dict:
        return {
            "role": self.role,
            "static": len(self.static_exports),
            "dynamic": len(self.dynamic_exports),
            "activatable_faults": activatable_faults(self.static_exports),
            "unexplained": self.unexplained,
            "unobserved": self.unobserved,
        }


class CensusReport:
    """The full reconciliation across roles."""

    def __init__(self, roles: dict):
        self.roles = roles  # role -> RoleCensus

    @property
    def clean(self) -> bool:
        return all(not census.unexplained
                   for census in self.roles.values())

    @property
    def unexplained_total(self) -> int:
        return sum(len(census.unexplained)
                   for census in self.roles.values())

    def to_json(self) -> dict:
        from ..core.faultlist import fault_space_census

        totals = fault_space_census()
        return {
            "fault_space": {key: totals[key] for key in
                            ("exports", "zero_param", "injectable",
                             "param_faults", "io_faults",
                             "resource_faults")},
            "roles": [self.roles[role].to_json()
                      for role in sorted(self.roles)],
            "clean": self.clean,
        }

    def render_json(self) -> str:
        return json.dumps(self.to_json(), indent=2)

    def render_text(self) -> str:
        from ..core.faultlist import fault_space_census

        totals = fault_space_census()
        lines = [
            "census-diff: static activatable prediction vs dynamic "
            "evidence",
            f"fault space: {totals['exports']} exports, "
            f"{totals['zero_param']} zero-param, "
            f"{totals['injectable']} injectable, "
            f"{totals['param_faults']} parameter faults, "
            f"{totals['io_faults']} io faults, "
            f"{totals['resource_faults']} resource faults",
        ]
        for role in sorted(self.roles):
            census = self.roles[role]
            lines.append(
                f"  {role}: static {len(census.static_exports)} exports "
                f"({activatable_faults(census.static_exports)} "
                f"activatable faults), dynamic "
                f"{len(census.dynamic_exports)}, "
                f"unobserved {len(census.unobserved)}, "
                f"unexplained {len(census.unexplained)}")
            for name in census.unexplained:
                lines.append(f"    unexplained activation: {name}")
        lines.append("census-diff: "
                     + ("clean — every dynamic activation is statically "
                        "explained"
                        if self.clean else
                        f"{self.unexplained_total} unexplained dynamic "
                        "activation(s): the call graph is missing edges"))
        return "\n".join(lines)


def census_diff(modules: Sequence[ParsedModule],
                store_paths: Sequence[str] = (),
                workload_names: Optional[Sequence[str]] = None,
                ) -> CensusReport:
    """Reconcile the static prediction with dynamic evidence.

    With ``store_paths``, dynamic evidence comes from those run
    stores; otherwise fresh profile runs are executed.  Roles only
    present on one side still appear: a statically known role with no
    dynamic evidence reports empty observation (all-unobserved), and a
    dynamically observed role the graph does not know yields findings
    through its wholly unexplained set.
    """
    static = static_role_exports(modules)
    if store_paths:
        dynamic = dynamic_census_from_stores(store_paths)
    else:
        dynamic = dynamic_census_live(workload_names)
    roles = {}
    for role in sorted(set(static) | set(dynamic)):
        roles[role] = RoleCensus(role, static.get(role, set()),
                                 dynamic.get(role, set()))
    return CensusReport(roles)


# ----------------------------------------------------------------------
# The rule: dead fault space in fault-list files
# ----------------------------------------------------------------------
class FaultReachabilityRule(Rule):
    name = RULE
    description = ("fault-list entries must target functions some "
                   "registered workload role can reach")

    def __init__(self) -> None:
        self._reachable: Optional[set] = None

    def check_project(self,
                      modules: Sequence[ParsedModule]) -> Iterable[Finding]:
        graph = callgraph_for(modules)
        roles = graph.roles()
        if not roles:
            # No registrations in scope (linting a fragment): without
            # roots every export would look dead, so stay silent.
            self._reachable = None
            return ()
        reachable: set = set()
        for roots in roles.values():
            reachable.update(name for api, name in
                             graph.reachable_api(roots) if api == "k32")
        self._reachable = reachable
        return ()

    def check_fault_file(self,
                         fault_file: FaultListFile) -> Iterable[Finding]:
        if self._reachable is None:
            return
        from ..nt.kernel32.signatures import REGISTRY

        seen: set = set()
        for line_number, raw_line in enumerate(
                fault_file.text.splitlines(), start=1):
            line = raw_line.strip()
            if not line or line.startswith("#"):
                continue
            function = line.split()[0]
            # One finding per function per file; the fault-space rule
            # separately validates names/indices, so unknown exports
            # are its findings, not ours.
            if function in seen or function not in REGISTRY or \
                    function in self._reachable:
                continue
            seen.add(function)
            yield Finding(
                RULE, fault_file.path, line_number,
                f"fault targets {function}, which no registered "
                "workload role can statically reach — dead fault space "
                "(its probe run can never activate)",
                suggestion=f"drop the {function} entries, or register "
                           "the program that calls it")

"""Error-propagation rule — failures detected but never acted on.

The paper's "robust API, fragile application" pattern: kernel32
faithfully reports the injected fault (NULL handle, FALSE status), the
application even *notices* — and then the news dies.  A helper returns
``None`` on failure and its caller throws the result away; a HANDLE is
bound but used without ever being examined; an ``if not ok:`` branch
contains nothing but ``pass``.  Each of those breaks the propagation
chain at a different link, so the rule reports three finding shapes:

**dropped result** — a call to an error-signalling project function
(one that returns ``None``/``False``/``0`` under a failure guard, or
transitively passes such a result through) whose result is discarded.
The callee did its job; no caller can ever act::

    self._load_data_file(ctx, name)        # flagged: returns None on failure
    ok = self._load_data_file(ctx, name)   # fine (if ok is examined)

**unexamined result** — a must-check API or error-signalling helper
result is bound to a name that is *never* examined in the function, yet
is dereferenced or passed onward to another API call — the exact
corrupted-parameter hand-off the injector exercises::

    h = yield from k32.CreateFileA(...)
    yield from k32.ReadFile(h, ...)        # flagged: h never tested

Returning the name is not flagged: that *is* propagation (the caller
inherits the obligation, and the pass-through closure tracks it).
Binding to ``_`` stays the documented deliberate-discard opt-out.

**swallowed failure** — a recognised failure test on a must-check
result whose failure branch does nothing at all (``pass`` / docstring
only).  The error was detected and then deliberately ignored.

All three are interprocedural: what counts as "error-signalling" comes
from the whole-program :class:`~repro.lint.callgraph.CallGraph`, so a
producer three modules away still marks its droppers.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .callgraph import CallGraph, FunctionSummary, callgraph_for
from .core import Finding, ParsedModule, Rule
from .returns import _return_class

RULE = "error-propagation"

_DELIBERATE_DISCARD = frozenset({"_"})


def _module_path(graph: CallGraph, module_name: str) -> str:
    index = graph.project.modules.get(module_name)
    return index.path if index is not None else module_name


def _must_check_origins(summary: FunctionSummary,
                        producers: dict) -> dict:
    """name -> (bind line, origin description) for every local bound
    from a must-check API call or an error-signalling project call."""
    origins: dict[str, tuple] = {}
    for call in summary.api_calls:
        rclass = _return_class(call.api, call.name)
        if rclass is None:
            continue
        for name in call.bound:
            if name not in _DELIBERATE_DISCARD:
                origins.setdefault(
                    name,
                    (call.line, f"{call.api}.{call.name} ({rclass})"))
    for site in summary.calls:
        if site.via_reference or site.callee not in producers:
            continue
        for name in site.bound:
            if name not in _DELIBERATE_DISCARD:
                origins.setdefault(
                    name, (site.line, f"{site.callee[1]}() which "
                                      f"{producers[site.callee]}"))
    return origins


class ErrorPropagationRule(Rule):
    name = RULE
    description = ("detected kernel32 failures must propagate to a "
                   "caller that can act")

    def check_project(self,
                      modules: Sequence[ParsedModule]) -> Iterable[Finding]:
        graph = callgraph_for(modules)
        producers = graph.error_producers()
        findings: list[Finding] = []
        for key in sorted(graph.summaries):
            summary = graph.summaries[key]
            path = _module_path(graph, summary.module_name)
            findings.extend(self._dropped_results(
                summary, path, producers))
            findings.extend(self._unexamined_results(
                summary, path, producers))
            findings.extend(self._swallowed_failures(
                summary, path, producers))
        return findings

    # ------------------------------------------------------------------
    def _dropped_results(self, summary: FunctionSummary, path: str,
                         producers: dict) -> Iterable[Finding]:
        for site in summary.calls:
            if site.via_reference or site.callee not in producers:
                continue
            if not site.discarded:
                continue
            yield Finding(
                RULE, path, site.line,
                f"result of {site.callee[1]}() is discarded, but it "
                f"{producers[site.callee]} — the detected failure can "
                "never reach a caller that can act",
                symbol=summary.qualname,
                suggestion="bind the result and test it (return or "
                           "escalate the failure), or assign to '_' to "
                           "discard deliberately")

    def _unexamined_results(self, summary: FunctionSummary, path: str,
                            producers: dict) -> Iterable[Finding]:
        origins = _must_check_origins(summary, producers)
        if not origins:
            return
        returned = set()
        for info in summary.returns:
            returned.update(info.names)
        uses: dict[str, int] = {}
        for name, _api, _export, line in summary.api_arg_uses:
            if name in origins and line > origins[name][0]:
                uses.setdefault(name, line)
                uses[name] = min(uses[name], line)
        for name, line in summary.subscript_uses:
            if name in origins and line > origins[name][0]:
                uses.setdefault(name, line)
                uses[name] = min(uses[name], line)
        for name in sorted(uses):
            if name in summary.checked_names or name in returned:
                continue
            bind_line, origin = origins[name]
            yield Finding(
                RULE, path, uses[name],
                f"'{name}' holds the result of {origin} bound at line "
                f"{bind_line} but is used without ever being examined — "
                "a failed call propagates as a corrupted parameter",
                symbol=summary.qualname,
                suggestion=f"test '{name}' against the failure value "
                           "before using it")

    def _swallowed_failures(self, summary: FunctionSummary, path: str,
                            producers: dict) -> Iterable[Finding]:
        origins = _must_check_origins(summary, producers)
        for line, name in summary.swallowed_branches:
            origin = origins.get(name)
            if origin is None or line <= origin[0]:
                continue
            yield Finding(
                RULE, path, line,
                f"failure of {origin[1]} is detected here, but the "
                "failure branch does nothing — the error is swallowed "
                "on the spot",
                symbol=summary.qualname,
                suggestion="escalate inside the branch: return the "
                           "failure, retry, or log and abort")

"""The static-analysis framework: findings, rules, and the analyzer.

The paper's central observation is that most failures trace back to
applications and middleware mishandling the library-call boundary —
corrupted parameters accepted unchecked, error returns ignored, handles
leaked, event loops that stop yielding.  ``repro.lint`` turns the
signature registry (the same 681-export table the fault injector
enumerates) into a *static* correctness tool: every rule cross-checks
source code against the declared fault space, so drift between the two
is caught before a 3,306-fault campaign runs.

Architecture
------------
- :class:`Finding` — one diagnostic, with a line-independent ``key``
  used by the baseline mechanism.
- :class:`Rule` — a named pass.  Rules see parsed modules one at a
  time (``check_module``), the whole project at once
  (``check_project``), and non-Python fault-list files
  (``check_fault_file``).
- :class:`Analyzer` — collects files, parses each once, runs the
  rules, and applies a baseline.

The baseline file maps finding keys to allowed occurrence counts, so
deliberate hazards (the simulated servers' sloppy error handling *is*
the object of study) stay documented without silencing new instances
of the same mistake.
"""

from __future__ import annotations

import ast
import json
import os
from typing import Callable, Iterable, Iterator, Optional, Sequence

# File extensions treated as fault-list files when scanning directories.
FAULT_LIST_SUFFIXES = (".lst", ".flt", ".faults")

_SKIP_DIR_NAMES = {"__pycache__", ".git", ".pytest_cache"}


class Finding:
    """One diagnostic produced by a rule."""

    __slots__ = ("rule", "path", "line", "message", "symbol", "suggestion")

    def __init__(self, rule: str, path: str, line: int, message: str,
                 symbol: str = "", suggestion: str = ""):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message
        self.symbol = symbol
        self.suggestion = suggestion

    @property
    def key(self) -> str:
        """Baseline key: stable across unrelated line-number drift.

        The suggestion is deliberately excluded — rewording a fix-it
        must not invalidate an existing baseline entry.
        """
        return f"{self.rule}|{self.path}|{self.symbol}|{self.message}"

    def render(self) -> str:
        where = f"{self.path}:{self.line}"
        sym = f" in {self.symbol}" if self.symbol else ""
        text = f"{where}: [{self.rule}] {self.message}{sym}"
        if self.suggestion:
            text += f"\n    fix: {self.suggestion}"
        return text

    def to_json(self) -> dict:
        payload = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
        }
        if self.suggestion:
            payload["suggestion"] = self.suggestion
        return payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Finding {self.render()}>"


class ParsedModule:
    """One successfully parsed Python source file."""

    __slots__ = ("path", "tree", "source")

    def __init__(self, path: str, tree: ast.Module, source: str):
        self.path = path
        self.tree = tree
        self.source = source


class FaultListFile:
    """One fault-list file picked up by the scan."""

    __slots__ = ("path", "text")

    def __init__(self, path: str, text: str):
        self.path = path
        self.text = text


class Rule:
    """Base class for one analysis pass."""

    name = ""
    description = ""
    # Rule family, selectable as a group via ``--select`` (e.g. both
    # valueflow rules answer to ``--select valueflow``).  Defaults to
    # the rule's own name, so every rule belongs to a family.
    family = ""

    def check_module(self, module: ParsedModule) -> Iterable[Finding]:
        return ()

    def check_project(self, modules: Sequence[ParsedModule]) -> Iterable[Finding]:
        return ()

    def check_fault_file(self, fault_file: FaultListFile) -> Iterable[Finding]:
        return ()


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------
_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_SCOPE_NODES = _FUNCTION_NODES + (ast.Lambda, ast.ClassDef)


def walk_in_scope(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested scopes."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(child, _SCOPE_NODES):
            stack.extend(ast.iter_child_nodes(child))


def is_generator(fn: ast.AST) -> bool:
    """Whether a function node is a generator (yields in its own scope)."""
    return any(isinstance(node, (ast.Yield, ast.YieldFrom))
               for node in walk_in_scope(fn))


def iter_functions(tree: ast.Module) -> Iterator[tuple[str, ast.FunctionDef]]:
    """All function definitions with dotted qualified names."""

    def visit(node: ast.AST, prefix: str) -> Iterator[tuple[str, ast.FunctionDef]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _FUNCTION_NODES):
                qualname = f"{prefix}{child.name}"
                yield qualname, child
                yield from visit(child, f"{qualname}.")
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, f"{prefix}{child.name}.")
            else:
                yield from visit(child, prefix)

    return visit(tree, "")


def sim_api_call(node: ast.AST) -> Optional[tuple[str, str, ast.Call]]:
    """Recognise a simulated library call site.

    Matches ``k32.Name(...)``, ``ctx.k32.Name(...)``, ``libc.name(...)``
    etc. — any call whose receiver chain ends in an attribute or name
    spelled ``k32`` or ``libc``.  Returns ``(api, function, call)``
    where ``api`` is ``"k32"`` or ``"libc"``, or None.
    """
    if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
        return None
    receiver = node.func.value
    if isinstance(receiver, ast.Name):
        api = receiver.id
    elif isinstance(receiver, ast.Attribute):
        api = receiver.attr
    else:
        return None
    if api not in ("k32", "libc"):
        return None
    return api, node.func.attr, node


def unwrap_yield(node: ast.AST) -> ast.AST:
    """Strip ``yield from`` / ``yield`` wrappers from an expression."""
    while isinstance(node, (ast.Yield, ast.YieldFrom)):
        if node.value is None:
            break
        node = node.value
    return node


def suggest(name: str, candidates: Iterable[str]) -> str:
    """A ``did you mean`` suffix using difflib, or empty string."""
    import difflib

    matches = difflib.get_close_matches(name, list(candidates), n=1)
    return f" (did you mean {matches[0]!r}?)" if matches else ""


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
BASELINE_VERSION = 1
DEFAULT_BASELINE = "lint-baseline.json"


def load_baseline(path: str) -> dict[str, int]:
    """Read a baseline file into a ``key -> allowed count`` map."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ValueError(f"{path}: not a version-{BASELINE_VERSION} "
                         "lint baseline")
    suppress = data.get("suppress", {})
    if not isinstance(suppress, dict):
        raise ValueError(f"{path}: 'suppress' must be an object")
    return {str(key): int(count) for key, count in suppress.items()}


def dump_baseline(findings: Iterable[Finding],
                  keep: Optional[dict[str, int]] = None) -> str:
    """Serialise the given findings as a baseline file.

    ``keep`` carries prior baseline entries to retain verbatim —
    suppressions for files outside the current run's scope.  Fresh
    findings win on key collisions, so in-scope counts always reflect
    this run.
    """
    suppress: dict[str, int] = {}
    for finding in findings:
        suppress[finding.key] = suppress.get(finding.key, 0) + 1
    for key, count in (keep or {}).items():
        suppress.setdefault(key, count)
    payload = {
        "version": BASELINE_VERSION,
        "suppress": dict(sorted(suppress.items())),
    }
    return json.dumps(payload, indent=2) + "\n"


def baseline_entry_path(key: str) -> str:
    """The file path a baseline key refers to (``rule|path|symbol|…``)."""
    parts = key.split("|", 2)
    return parts[1] if len(parts) > 1 else ""


def apply_baseline(findings: Sequence[Finding],
                   baseline: dict[str, int]) -> tuple[list[Finding], int]:
    """Split findings into (new, suppressed_count).

    Each baseline key suppresses up to its allowed count of matching
    findings; occurrences beyond the count are reported, so a baseline
    enforces "no *new* instances" rather than blanket silence.
    """
    remaining = dict(baseline)
    fresh: list[Finding] = []
    suppressed = 0
    for finding in findings:
        allowed = remaining.get(finding.key, 0)
        if allowed > 0:
            remaining[finding.key] = allowed - 1
            suppressed += 1
        else:
            fresh.append(finding)
    return fresh, suppressed


# ----------------------------------------------------------------------
# Analyzer
# ----------------------------------------------------------------------
def _lint_files(tasks: Sequence[tuple],
                rules: Sequence[Rule]) -> tuple:
    """Parse and per-file-check a batch of ``(path, display)`` tasks.

    Module-level so ``ProcessPoolExecutor`` can pickle it; returns the
    parsed modules (the parent still needs them for project rules) and
    the findings from every ``check_module`` pass.
    """
    modules: list[ParsedModule] = []
    findings: list[Finding] = []
    for path, display in tasks:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            findings.append(Finding(
                "parse-error", display, exc.lineno or 1,
                f"syntax error: {exc.msg}"))
            continue
        modules.append(ParsedModule(display, tree, source))
    for module in modules:
        for rule in rules:
            findings.extend(rule.check_module(module))
    return modules, findings


class LintResult:
    """Outcome of one analyzer run."""

    __slots__ = ("findings", "suppressed", "files_checked",
                 "checked_paths")

    def __init__(self, findings: list[Finding], suppressed: int,
                 files_checked: int,
                 checked_paths: frozenset = frozenset()):
        self.findings = findings
        self.suppressed = suppressed
        self.files_checked = files_checked
        # Display paths this run actually analysed — baseline
        # regeneration uses them to tell "file fixed" (in scope, no
        # findings) from "file out of scope" (entry kept).
        self.checked_paths = checked_paths

    @property
    def clean(self) -> bool:
        return not self.findings

    def render_text(self) -> str:
        lines = [finding.render() for finding in self.findings]
        lines.append(
            f"{len(self.findings)} finding(s), {self.suppressed} baselined, "
            f"{self.files_checked} file(s) checked")
        if self.clean and self.suppressed:
            lines.append("note: baseline-suppressed findings only — "
                         "no new findings")
        return "\n".join(lines)

    def render_json(self) -> str:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return json.dumps({
            "findings": [finding.to_json() for finding in self.findings],
            "suppressed": self.suppressed,
            "files_checked": self.files_checked,
            "counts": counts,
        }, indent=2)


class Analyzer:
    """Collect files, run rules, apply the baseline."""

    def __init__(self, rules: Sequence[Rule],
                 baseline: Optional[dict[str, int]] = None):
        self.rules = list(rules)
        self.baseline = baseline or {}

    # ------------------------------------------------------------------
    def collect(self, paths: Sequence[str]) -> tuple[list[str], list[str]]:
        """Expand paths into (python_files, fault_list_files)."""
        py_files: list[str] = []
        fault_files: list[str] = []
        for path in paths:
            if os.path.isdir(path):
                for dirpath, dirnames, filenames in os.walk(path):
                    dirnames[:] = sorted(
                        d for d in dirnames
                        if d not in _SKIP_DIR_NAMES
                        and not d.endswith(".egg-info"))
                    for filename in sorted(filenames):
                        full = os.path.join(dirpath, filename)
                        if filename.endswith(".py"):
                            py_files.append(full)
                        elif filename.endswith(FAULT_LIST_SUFFIXES):
                            fault_files.append(full)
            elif os.path.isfile(path):
                if path.endswith(FAULT_LIST_SUFFIXES):
                    fault_files.append(path)
                else:
                    py_files.append(path)
            else:
                raise FileNotFoundError(path)
        return py_files, fault_files

    @staticmethod
    def _display_path(path: str) -> str:
        relative = os.path.relpath(path)
        if not relative.startswith(".."):
            path = relative
        return path.replace(os.sep, "/")

    # ------------------------------------------------------------------
    def run(self, paths: Sequence[str], jobs: int = 1) -> LintResult:
        py_files, fault_files = self.collect(paths)
        tasks = [(path, self._display_path(path)) for path in py_files]
        if jobs > 1 and len(tasks) > 1:
            modules, findings = self._run_parallel(tasks, jobs)
        else:
            modules, findings = _lint_files(tasks, self.rules)

        for rule in self.rules:
            findings.extend(rule.check_project(modules))
        for path in fault_files:
            display = self._display_path(path)
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
            fault_file = FaultListFile(display, text)
            for rule in self.rules:
                findings.extend(rule.check_fault_file(fault_file))

        findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
        fresh, suppressed = apply_baseline(findings, self.baseline)
        checked = frozenset(display for _path, display in tasks) | \
            frozenset(self._display_path(path) for path in fault_files)
        return LintResult(fresh, suppressed,
                          len(py_files) + len(fault_files),
                          checked_paths=checked)

    # ------------------------------------------------------------------
    def _run_parallel(self, tasks: Sequence[tuple], jobs: int) -> tuple:
        """Fan per-file analysis out over worker processes.

        Same chunking idiom as ``repro.core.exec.ProcessPoolBackend``:
        chunks a few times smaller than an even split keep the workers
        busy when file sizes are skewed.  Results are collected in
        submission order and the caller sorts the merged finding list,
        so the output is bit-identical to a serial run.
        """
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        chunk_size = max(1, len(tasks) // (jobs * 4) + 1)
        chunks = [list(tasks[i:i + chunk_size])
                  for i in range(0, len(tasks), chunk_size)]
        try:
            mp_context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX hosts
            mp_context = None
        modules: list[ParsedModule] = []
        findings: list[Finding] = []
        with ProcessPoolExecutor(max_workers=min(jobs, len(chunks)),
                                 mp_context=mp_context) as pool:
            futures = [pool.submit(_lint_files, chunk, self.rules)
                       for chunk in chunks]
            for future in futures:
                chunk_modules, chunk_findings = future.result()
                modules.extend(chunk_modules)
                findings.extend(chunk_findings)
        return modules, findings


def default_rules() -> list[Rule]:
    """The twelve passes of the suite, in reporting order."""
    from .conformance import SignatureConformanceRule
    from .determinism import DeterminismRule
    from .escape import CorruptionEscapeRule
    from .faultspace import FaultSpaceRule
    from .handles import HandleLeakRule
    from .censusdiff import FaultReachabilityRule
    from .propagation import ErrorPropagationRule
    from .races import YieldRaceRule
    from .returns import UncheckedReturnRule
    from .simhang import SimHangRule
    from .valueflow import DeadParamRule, UseBeforeValidateRule

    return [
        SignatureConformanceRule(),
        UncheckedReturnRule(),
        ErrorPropagationRule(),
        CorruptionEscapeRule(),
        HandleLeakRule(),
        SimHangRule(),
        YieldRaceRule(),
        DeterminismRule(),
        DeadParamRule(),
        UseBeforeValidateRule(),
        FaultSpaceRule(),
        FaultReachabilityRule(),
    ]


def run_lint(paths: Sequence[str],
             rules: Optional[Sequence[Rule]] = None,
             baseline: Optional[dict[str, int]] = None,
             jobs: int = 1) -> LintResult:
    """Convenience entry point used by the CLI and tests."""
    analyzer = Analyzer(rules if rules is not None else default_rules(),
                        baseline)
    return analyzer.run(paths, jobs=jobs)

"""SARIF 2.1.0 output for the linter.

SARIF is the interchange format GitHub code scanning ingests
(``github/codeql-action/upload-sarif``), so findings annotate the PR
diff instead of hiding in a job log.  The emitted document is
*deterministic*: no timestamps, no absolute paths, no GUIDs — two runs
over the same tree serialise byte-identically, keeping the output
diffable and cache-friendly (the same property
:mod:`repro.lint.determinism` polices in the simulator itself).

Only the baseline-surviving findings are emitted — suppressed,
paper-faithful sloppiness stays out of code scanning, same as the text
and JSON formats.
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence

from .core import Finding, LintResult, Rule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

TOOL_NAME = "repro-lint"
TOOL_URI = "https://github.com/paper-repro/nt-reliability"

# Parse failures make every downstream verdict meaningless; everything
# else is a warning (the campaign, not the linter, is the arbiter).
_ERROR_RULES = frozenset({"parse-error"})


def _rule_descriptor(rule: Rule) -> dict:
    return {
        "id": rule.name,
        "shortDescription": {"text": rule.description or rule.name},
        "defaultConfiguration": {
            "level": "error" if rule.name in _ERROR_RULES else "warning",
        },
    }


def _result(finding: Finding) -> dict:
    message = finding.message
    if finding.symbol:
        message = f"{message} [in {finding.symbol}]"
    if finding.suggestion:
        message = f"{message} Fix: {finding.suggestion}."
    return {
        "ruleId": finding.rule,
        "level": "error" if finding.rule in _ERROR_RULES else "warning",
        "message": {"text": message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": finding.path,
                    "uriBaseId": "%SRCROOT%",
                },
                "region": {"startLine": max(1, finding.line)},
            },
        }],
        # Baseline keys survive line drift; fingerprints let code
        # scanning match findings across pushes the same way.
        "partialFingerprints": {"reproLintKey/v1": finding.key},
    }


def render_sarif(result: LintResult, rules: Sequence[Rule],
                 extra_rule_ids: Iterable[str] = ("parse-error",)) -> str:
    """Serialise a lint result as a SARIF 2.1.0 document."""
    descriptors = [_rule_descriptor(rule) for rule in rules]
    known = {descriptor["id"] for descriptor in descriptors}
    for rule_id in extra_rule_ids:
        if rule_id not in known:
            descriptors.append({
                "id": rule_id,
                "shortDescription": {"text": rule_id},
                "defaultConfiguration": {
                    "level": ("error" if rule_id in _ERROR_RULES
                              else "warning"),
                },
            })
    descriptors.sort(key=lambda descriptor: descriptor["id"])
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": TOOL_NAME,
                    "informationUri": TOOL_URI,
                    "rules": descriptors,
                },
            },
            "columnKind": "utf16CodeUnits",
            "results": [_result(finding) for finding in result.findings],
        }],
    }
    return json.dumps(document, indent=2) + "\n"
